package lock

import (
	"math/rand"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
)

func TestRLLDeepCorrectKeyRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := gen.Random("d", 12, 250, 8, 31)
	l, err := RLLDeep(orig, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Technique != "RLL-deep" {
		t.Errorf("technique = %q", l.Technique)
	}
	if !sampledEquiv(orig, l, l.Key, 200, rng) {
		t.Error("correct key fails")
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[3] = !wrong[3]
	if sampledEquiv(orig, l, wrong, 300, rng) {
		t.Error("wrong key appears functional")
	}
}

func TestRLLDeepPrefersDeepWires(t *testing.T) {
	// Build a circuit with one long chain and broad shallow logic; the
	// deep locker must put its key gate into the chain (high height),
	// not at the chain's end or the shallow gates.
	c := circuit.New("deep")
	a := c.AddInput("a")
	b := c.AddInput("b")
	w := c.AddGate(circuit.And, "start", a, b)
	chain := []int{w}
	for i := 0; i < 20; i++ {
		w = c.AddGate(circuit.Buf, "", w)
		chain = append(chain, w)
	}
	shal := c.AddGate(circuit.Or, "shallow", a, b)
	c.AddOutput(w, "deep_out")
	c.AddOutput(shal, "shallow_out")

	rng := rand.New(rand.NewSource(2))
	l, err := RLLDeep(c, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Find the key gate's data fanin: it must be the chain start (the
	// wire with maximal height).
	var kg int
	for id := range l.Circuit.Gates {
		if l.Circuit.Gates[id].Name == "kg_keyinput0" {
			kg = id
			break
		}
	}
	dataIn := l.Circuit.Gates[kg].Fanin[0]
	if l.Circuit.Gates[dataIn].Name != "start" {
		t.Errorf("deep locker chose %q, want the deepest wire \"start\"",
			l.Circuit.Gates[dataIn].Name)
	}
}

func TestRLLDeepErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := RLLDeep(gen.C17(), 0, rng); err == nil {
		t.Error("want error for 0 keys")
	}
	if _, err := RLLDeep(gen.C17(), 100, rng); err == nil {
		t.Error("want error for too many keys")
	}
	l, _ := RLL(gen.C17(), 2, rng)
	if _, err := RLLDeep(l.Circuit, 2, rng); err == nil {
		t.Error("want error for re-locking")
	}
}

func TestHeightToOutputs(t *testing.T) {
	c := circuit.New("h")
	a := c.AddInput("a")
	g1 := c.AddGate(circuit.Not, "g1", a)
	g2 := c.AddGate(circuit.Not, "g2", g1)
	g3 := c.AddGate(circuit.Not, "g3", g2)
	c.AddOutput(g3, "")
	h := heightToOutputs(c)
	if h[a] != 3 || h[g1] != 2 || h[g2] != 1 || h[g3] != 0 {
		t.Errorf("heights = %v", h)
	}
}

// TestRLLDeepRaisesKeyPathError verifies the defensive intent: under
// noise, the key-dependent output of an RLL-deep lock carries more
// error than that of a shallow lock on the same netlist.
func TestRLLDeepRaisesKeyPathError(t *testing.T) {
	// Chain circuit from above: deep lock puts the key gate 21 gates
	// from the output; a key-gate at the output would see ~eps.
	c := circuit.New("deep")
	a := c.AddInput("a")
	b := c.AddInput("b")
	w := c.AddGate(circuit.And, "start", a, b)
	for i := 0; i < 20; i++ {
		w = c.AddGate(circuit.Buf, "", w)
	}
	c.AddOutput(w, "out")
	rng := rand.New(rand.NewSource(4))
	l, err := RLLDeep(c, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Depth of the key gate's output cone == chain length, so the
	// locked netlist's output BER under noise stays the chain's.
	lv, depth := l.Circuit.Levels()
	_ = lv
	if depth < 21 {
		t.Errorf("deep lock reduced depth to %d", depth)
	}
}
