// Package lock implements the logic-locking techniques the paper
// evaluates against (§III "widely accepted locking techniques [6, 23]"):
//
//   - RLL — random XOR/XNOR key-gate insertion (EPIC-style),
//   - SLL — Strong Logic Locking (Rajendran et al., DAC'12): key gates
//     placed to maximise pairwise interference so individual key bits
//     cannot be sensitised/muted independently,
//   - SFLL-HD — Stripped-Functionality Logic Locking (Yasin et al.,
//     CCS'17): the design is functionality-stripped on the protected
//     input cube(s) and a Hamming-distance restore unit re-injects the
//     flip under the correct key.
//
// All lockers take an unlocked circuit (no key inputs), never mutate
// it, and return a fresh locked netlist together with its correct key.
package lock

import (
	"errors"
	"fmt"
	"math/rand"

	"statsat/internal/circuit"
)

// Locked bundles a locked netlist with its ground-truth key.
type Locked struct {
	Circuit   *circuit.Circuit
	Key       []bool
	Technique string
}

// Overhead reports the silicon cost of a lock relative to the
// original netlist, in the form locking papers quote it.
type Overhead struct {
	OrigGates   int
	LockedGates int
	ExtraGates  int
	KeyBits     int
	// GatePercent is 100·ExtraGates/OrigGates.
	GatePercent float64
}

// CostVersus computes the locking overhead against the original
// circuit.
func (l *Locked) CostVersus(orig *circuit.Circuit) Overhead {
	o := Overhead{
		OrigGates:   orig.NumLogicGates(),
		LockedGates: l.Circuit.NumLogicGates(),
		KeyBits:     len(l.Key),
	}
	o.ExtraGates = o.LockedGates - o.OrigGates
	if o.OrigGates > 0 {
		o.GatePercent = 100 * float64(o.ExtraGates) / float64(o.OrigGates)
	}
	return o
}

// ErrNoKeys is returned when a locker is asked for zero key bits.
var ErrNoKeys = errors.New("lock: key width must be positive")

// insertKeyGate splices an XOR (xnor=false) or XNOR (xnor=true) key
// gate after wire w: all existing readers of w (and any PO driven by
// w) are rewired to the key-gate output. Returns the key-input bit
// value that preserves functionality (false for XOR, true for XNOR).
func insertKeyGate(c *circuit.Circuit, w int, xnor bool, keyName string) bool {
	k := c.AddKey(keyName)
	ty := circuit.Xor
	if xnor {
		ty = circuit.Xnor
	}
	g := c.AddGate(ty, "kg_"+keyName, w, k)
	for id := range c.Gates {
		if id == g {
			continue
		}
		for j, f := range c.Gates[id].Fanin {
			if f == w {
				c.Gates[id].Fanin[j] = g
			}
		}
	}
	for i, po := range c.POs {
		if po == w {
			c.POs[i] = g
		}
	}
	return xnor
}

// lockableWires returns the internal wires eligible for key-gate
// insertion: observable logic gates (primary inputs excluded so the
// key gate sits inside the design, as is conventional).
func lockableWires(c *circuit.Circuit) []int {
	reach := c.ReachesOutput()
	var out []int
	for id := range c.Gates {
		if c.Gates[id].Type.IsInputType() {
			continue
		}
		if reach[id] {
			out = append(out, id)
		}
	}
	return out
}

// RLL locks the circuit with nKeys random XOR/XNOR key gates at
// distinct observable wires.
func RLL(orig *circuit.Circuit, nKeys int, rng *rand.Rand) (*Locked, error) {
	if nKeys <= 0 {
		return nil, ErrNoKeys
	}
	if orig.NumKeys() != 0 {
		return nil, fmt.Errorf("lock: circuit %q already carries %d key inputs", orig.Name, orig.NumKeys())
	}
	c := orig.Clone()
	c.Name = orig.Name + "-rll"
	cand := lockableWires(c)
	if len(cand) < nKeys {
		return nil, fmt.Errorf("lock: circuit %q has %d lockable wires, need %d", orig.Name, len(cand), nKeys)
	}
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	key := make([]bool, nKeys)
	for i := 0; i < nKeys; i++ {
		key[i] = insertKeyGate(c, cand[i], rng.Intn(2) == 1, fmt.Sprintf("keyinput%d", i))
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("lock: RLL produced invalid netlist: %w", err)
	}
	return &Locked{Circuit: c, Key: key, Technique: "RLL"}, nil
}

// SLL locks the circuit with nKeys XOR/XNOR key gates chosen to
// maximise pairwise interference, following the Strong Logic Locking
// heuristic: two key gates interfere when their fanout cones converge
// on a common gate while neither gate lies on the other's path (a
// dominating placement would let the attacker mute one key bit by
// controlling the other). Candidates are scored greedily by the number
// of interference edges into the already-selected set.
func SLL(orig *circuit.Circuit, nKeys int, rng *rand.Rand) (*Locked, error) {
	if nKeys <= 0 {
		return nil, ErrNoKeys
	}
	if orig.NumKeys() != 0 {
		return nil, fmt.Errorf("lock: circuit %q already carries %d key inputs", orig.Name, orig.NumKeys())
	}
	c := orig.Clone()
	c.Name = orig.Name + "-sll"
	cand := lockableWires(c)
	if len(cand) < nKeys {
		return nil, fmt.Errorf("lock: circuit %q has %d lockable wires, need %d", orig.Name, len(cand), nKeys)
	}

	// Cap the candidate pool to keep cone analysis tractable on big
	// netlists; sampling is seeded and unbiased.
	const maxPool = 256
	if len(cand) > maxPool {
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		cand = cand[:maxPool]
	}
	cones := make(map[int][]bool, len(cand))
	for _, w := range cand {
		cones[w] = c.OutputCone(w)
	}
	interferes := func(a, b int) bool {
		if cones[a][b] || cones[b][a] {
			return false // same path: one dominates the other
		}
		ca, cb := cones[a], cones[b]
		for id := range ca {
			if ca[id] && cb[id] {
				return true // cones reconverge
			}
		}
		return false
	}

	selected := []int{cand[rng.Intn(len(cand))]}
	inSel := map[int]bool{selected[0]: true}
	for len(selected) < nKeys {
		best, bestScore := -1, -1
		for _, w := range cand {
			if inSel[w] {
				continue
			}
			score := 0
			for _, s := range selected {
				if interferes(w, s) {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = w, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("lock: SLL candidate pool exhausted at %d keys", len(selected))
		}
		selected = append(selected, best)
		inSel[best] = true
	}

	key := make([]bool, nKeys)
	for i, w := range selected {
		key[i] = insertKeyGate(c, w, rng.Intn(2) == 1, fmt.Sprintf("keyinput%d", i))
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("lock: SLL produced invalid netlist: %w", err)
	}
	return &Locked{Circuit: c, Key: key, Technique: "SLL"}, nil
}

// SFLLHD locks the circuit with SFLL-HD^h over keyBits protected
// primary inputs. The functionality-stripped circuit inverts the
// protected output for every input whose Hamming distance from the
// (hardwired) secret key equals h; the restore unit recomputes the
// same predicate against the key inputs and cancels the flip when the
// correct key is applied. protectedOut selects which primary output is
// stripped (use 0 if unsure; must be in range).
func SFLLHD(orig *circuit.Circuit, keyBits, h int, rng *rand.Rand) (*Locked, error) {
	return SFLLHDOutput(orig, keyBits, h, 0, rng)
}

// SFLLHDOutput is SFLLHD with an explicit protected-output index.
func SFLLHDOutput(orig *circuit.Circuit, keyBits, h, protectedOut int, rng *rand.Rand) (*Locked, error) {
	if keyBits <= 0 {
		return nil, ErrNoKeys
	}
	if orig.NumKeys() != 0 {
		return nil, fmt.Errorf("lock: circuit %q already carries %d key inputs", orig.Name, orig.NumKeys())
	}
	if keyBits > orig.NumPIs() {
		return nil, fmt.Errorf("lock: SFLL-HD needs %d protected inputs, circuit has %d", keyBits, orig.NumPIs())
	}
	if h < 0 || h > keyBits {
		return nil, fmt.Errorf("lock: SFLL-HD h=%d out of range [0,%d]", h, keyBits)
	}
	if protectedOut < 0 || protectedOut >= orig.NumPOs() {
		return nil, fmt.Errorf("lock: protected output %d out of range", protectedOut)
	}

	c := orig.Clone()
	c.Name = fmt.Sprintf("%s-sfllhd%d", orig.Name, h)

	// Protected input subset: a random choice of keyBits primary inputs.
	perm := rng.Perm(c.NumPIs())[:keyBits]
	prot := make([]int, keyBits)
	for i, p := range perm {
		prot[i] = c.PIs[p]
	}

	// Secret key.
	key := make([]bool, keyBits)
	for i := range key {
		key[i] = rng.Intn(2) == 1
	}

	// --- Functionality-stripped half: flip* = [HD(Xp, key*) == h],
	// with the secret hardwired as constants.
	diffStar := make([]int, keyBits)
	for i, x := range prot {
		kc := circuit.Const0
		if key[i] {
			kc = circuit.Const1
		}
		kg := c.AddGate(kc, fmt.Sprintf("fsc_k%d", i))
		diffStar[i] = c.AddGate(circuit.Xor, fmt.Sprintf("fsc_d%d", i), x, kg)
	}
	flipStar := hammingEquals(c, diffStar, h, "fsc")

	// --- Restore unit: flip = [HD(Xp, K) == h] over real key inputs.
	diff := make([]int, keyBits)
	for i, x := range prot {
		k := c.AddKey(fmt.Sprintf("keyinput%d", i))
		diff[i] = c.AddGate(circuit.Xor, fmt.Sprintf("ru_d%d", i), x, k)
	}
	flip := hammingEquals(c, diff, h, "ru")

	// Protected output: y' = y ⊕ flip* ⊕ flip.
	drv := c.POs[protectedOut]
	x1 := c.AddGate(circuit.Xor, "sfll_strip", drv, flipStar)
	x2 := c.AddGate(circuit.Xor, "sfll_restore", x1, flip)
	c.POs[protectedOut] = x2

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("lock: SFLL-HD produced invalid netlist: %w", err)
	}
	return &Locked{Circuit: c, Key: key, Technique: fmt.Sprintf("SFLL-HD^%d", h)}, nil
}

// hammingEquals builds [popcount(bits) == h] as gates and returns the
// predicate's wire ID. prefix namespaces the generated gate names.
func hammingEquals(c *circuit.Circuit, bits []int, h int, prefix string) int {
	sum := popcount(c, bits, prefix)
	// Compare against the constant h bit by bit.
	width := len(sum)
	var eqs []int
	for i := 0; i < width; i++ {
		want := h>>uint(i)&1 == 1
		var e int
		if want {
			e = c.AddGate(circuit.Buf, fmt.Sprintf("%s_eq%d", prefix, i), sum[i])
		} else {
			e = c.AddGate(circuit.Not, fmt.Sprintf("%s_eq%d", prefix, i), sum[i])
		}
		eqs = append(eqs, e)
	}
	// h might not be representable in width bits (h > max popcount is
	// rejected by the caller, so width always suffices).
	return andTree(c, eqs, prefix+"_and")
}

// popcount builds an adder network summing the given 1-bit wires and
// returns the sum's bits, LSB first. Uses ripple incorporation of one
// bit at a time (half-adder chains): O(n·log n) gates, plenty for key
// widths up to a few hundred bits.
func popcount(c *circuit.Circuit, bits []int, prefix string) []int {
	if len(bits) == 0 {
		z := c.AddGate(circuit.Const0, prefix+"_zero")
		return []int{z}
	}
	sum := []int{bits[0]}
	for n := 1; n < len(bits); n++ {
		carry := bits[n]
		for i := 0; i < len(sum) && carry >= 0; i++ {
			s := c.AddGate(circuit.Xor, fmt.Sprintf("%s_s%d_%d", prefix, n, i), sum[i], carry)
			cy := c.AddGate(circuit.And, fmt.Sprintf("%s_c%d_%d", prefix, n, i), sum[i], carry)
			sum[i] = s
			carry = cy
		}
		// Grow the sum when the carry can still be set.
		if 1<<uint(len(sum)) <= n+1 {
			sum = append(sum, carry)
		}
	}
	return sum
}

// andTree reduces wires with a balanced AND tree.
func andTree(c *circuit.Circuit, wires []int, prefix string) int {
	if len(wires) == 1 {
		return wires[0]
	}
	var next []int
	for i := 0; i < len(wires); i += 2 {
		if i+1 == len(wires) {
			next = append(next, wires[i])
			continue
		}
		next = append(next, c.AddGate(circuit.And, fmt.Sprintf("%s_%d_%d", prefix, len(wires), i), wires[i], wires[i+1]))
	}
	return andTree(c, next, prefix)
}
