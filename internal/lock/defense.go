package lock

import (
	"fmt"
	"math/rand"
	"sort"

	"statsat/internal/circuit"
)

// RLLDeep is a StatSAT-aware variant of random logic locking explored
// as the paper's "future work: defenses" direction: key gates are
// inserted at the wires with the longest paths to any primary output,
// so every key-dependent output difference must traverse a maximal
// number of noisy gates. Under the probabilistic error model this
// pushes exactly the output bits that carry key information toward
// BER 0.5 — the regime where StatSAT's uncertainty/BER gating must
// leave them unspecified and the attack is forced into instance
// duplication or force-proceed guesses.
//
// The defender pays nothing extra in silicon (same key-gate count as
// RLL) but the defence only raises the attack's cost; tests and the
// "defense" experiment quantify by how much.
func RLLDeep(orig *circuit.Circuit, nKeys int, rng *rand.Rand) (*Locked, error) {
	if nKeys <= 0 {
		return nil, ErrNoKeys
	}
	if orig.NumKeys() != 0 {
		return nil, fmt.Errorf("lock: circuit %q already carries %d key inputs", orig.Name, orig.NumKeys())
	}
	c := orig.Clone()
	c.Name = orig.Name + "-rlldeep"
	cand := lockableWires(c)
	if len(cand) < nKeys {
		return nil, fmt.Errorf("lock: circuit %q has %d lockable wires, need %d", orig.Name, len(cand), nKeys)
	}
	height := heightToOutputs(c)
	// Sort candidates by decreasing height; shuffle first so ties
	// break randomly rather than by gate ID.
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	sort.SliceStable(cand, func(i, j int) bool { return height[cand[i]] > height[cand[j]] })

	key := make([]bool, nKeys)
	for i := 0; i < nKeys; i++ {
		key[i] = insertKeyGate(c, cand[i], rng.Intn(2) == 1, fmt.Sprintf("keyinput%d", i))
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("lock: RLLDeep produced invalid netlist: %w", err)
	}
	return &Locked{Circuit: c, Key: key, Technique: "RLL-deep"}, nil
}

// heightToOutputs returns, per gate, the length of the longest path
// from the gate to any primary output (0 for gates that directly drive
// an output and for unobservable gates).
func heightToOutputs(c *circuit.Circuit) []int {
	h := make([]int, len(c.Gates))
	order := c.MustTopoOrder()
	// Walk in reverse topological order: a gate's height is one more
	// than the max height of its readers.
	fanout := c.Fanouts()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, r := range fanout[id] {
			if h[r]+1 > h[id] {
				h[id] = h[r] + 1
			}
		}
	}
	return h
}
