package lock

import (
	"math/rand"
	"testing"

	"statsat/internal/gen"
)

func TestAntiSATCorrectKeyRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := gen.C17()
	l, err := AntiSAT(orig, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != 6 {
		t.Fatalf("keys = %d", l.Circuit.NumKeys())
	}
	if !exhaustiveEquiv(t, orig, l, l.Key) {
		t.Error("correct key fails")
	}
	if l.Technique != "Anti-SAT" {
		t.Errorf("technique = %q", l.Technique)
	}
}

func TestAntiSATAnyEqualHalvesCorrect(t *testing.T) {
	// Anti-SAT's equivalence class: every key with K1 == K2 restores
	// the function.
	rng := rand.New(rand.NewSource(2))
	orig := gen.C17()
	l, err := AntiSAT(orig, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		r := make([]bool, 4)
		for i := range r {
			r[i] = rng.Intn(2) == 1
		}
		key := append(append([]bool(nil), r...), r...)
		if !exhaustiveEquiv(t, orig, l, key) {
			t.Errorf("K1==K2 key %v should be correct", key)
		}
	}
}

func TestAntiSATMismatchedHalvesCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := gen.C17()
	l, err := AntiSAT(orig, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0] // K1 ≠ K2 now
	if exhaustiveEquiv(t, orig, l, wrong) {
		t.Error("mismatched halves should corrupt some input")
	}
}

func TestAntiSATErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := gen.C17()
	if _, err := AntiSAT(orig, 0, rng); err == nil {
		t.Error("want error for 0 keys")
	}
	if _, err := AntiSAT(orig, 5, rng); err == nil {
		t.Error("want error for odd key width")
	}
	if _, err := AntiSAT(orig, 20, rng); err == nil {
		t.Error("want error for too many protected inputs")
	}
	l, _ := RLL(orig, 2, rng)
	if _, err := AntiSAT(l.Circuit, 4, rng); err == nil {
		t.Error("want error for re-locking")
	}
}

func TestSARLockCorrectKeyRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := gen.C17()
	l, err := SARLock(orig, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustiveEquiv(t, orig, l, l.Key) {
		t.Error("correct key fails")
	}
	if l.Technique != "SARLock" {
		t.Errorf("technique = %q", l.Technique)
	}
}

func TestSARLockWrongKeyCorruptsExactlyItsCube(t *testing.T) {
	// A wrong key K corrupts exactly the inputs with X_p == K (one
	// cube of the protected subspace).
	rng := rand.New(rand.NewSource(6))
	orig := gen.C17()
	l, err := SARLock(orig, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[1] = !wrong[1]
	diffs := 0
	pi := make([]bool, 5)
	for m := 0; m < 32; m++ {
		for b := 0; b < 5; b++ {
			pi[b] = m>>uint(b)&1 == 1
		}
		a := orig.Eval(pi, nil, nil)
		g := l.Circuit.Eval(pi, wrong, nil)
		for i := range a {
			if a[i] != g[i] {
				diffs++
				break
			}
		}
	}
	// 4 protected bits of 5 inputs: the wrong cube covers 2 patterns.
	if diffs != 2 {
		t.Errorf("wrong key corrupts %d/32 patterns, want 2", diffs)
	}
}

func TestSARLockAllWrongKeysCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := gen.C17()
	l, err := SARLock(orig, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	correctCount := 0
	for kb := 0; kb < 8; kb++ {
		key := []bool{kb&1 == 1, kb&2 == 2, kb&4 == 4}
		if exhaustiveEquiv(t, orig, l, key) {
			correctCount++
		}
	}
	if correctCount != 1 {
		t.Errorf("%d keys restore the function, want exactly 1", correctCount)
	}
}

func TestSARLockErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	orig := gen.C17()
	if _, err := SARLock(orig, 0, rng); err == nil {
		t.Error("want error for 0 keys")
	}
	if _, err := SARLock(orig, 9, rng); err == nil {
		t.Error("want error for too many protected inputs")
	}
	l, _ := RLL(orig, 2, rng)
	if _, err := SARLock(l.Circuit, 3, rng); err == nil {
		t.Error("want error for re-locking")
	}
}

func TestSATResilientOnLargerCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := gen.Random("big", 20, 300, 10, 77)
	for _, mk := range []struct {
		name string
		f    func() (*Locked, error)
	}{
		{"antisat", func() (*Locked, error) { return AntiSAT(orig, 12, rng) }},
		{"sarlock", func() (*Locked, error) { return SARLock(orig, 10, rng) }},
	} {
		l, err := mk.f()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if !sampledEquiv(orig, l, l.Key, 300, rng) {
			t.Errorf("%s: correct key fails", mk.name)
		}
	}
}
