package lock

import (
	"math/rand"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
)

// exhaustiveEquiv checks functional equivalence of locked(key) vs the
// original over the full input space (inputs must be small).
func exhaustiveEquiv(t *testing.T, orig *circuit.Circuit, l *Locked, key []bool) bool {
	t.Helper()
	n := orig.NumPIs()
	if n > 16 {
		t.Fatal("exhaustiveEquiv only for small circuits")
	}
	pi := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for b := 0; b < n; b++ {
			pi[b] = m>>uint(b)&1 == 1
		}
		a := orig.Eval(pi, nil, nil)
		b := l.Circuit.Eval(pi, key, nil)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// sampledEquiv checks equivalence on random vectors for larger circuits.
func sampledEquiv(orig *circuit.Circuit, l *Locked, key []bool, samples int, rng *rand.Rand) bool {
	for s := 0; s < samples; s++ {
		pi := orig.RandomInputs(rng)
		a := orig.Eval(pi, nil, nil)
		b := l.Circuit.Eval(pi, key, nil)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

func TestRLLCorrectKeyRestoresFunction(t *testing.T) {
	orig := gen.C17()
	rng := rand.New(rand.NewSource(1))
	l, err := RLL(orig, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != 4 || len(l.Key) != 4 {
		t.Fatalf("key width %d/%d", l.Circuit.NumKeys(), len(l.Key))
	}
	if !exhaustiveEquiv(t, orig, l, l.Key) {
		t.Error("correct key does not restore c17")
	}
	if l.Technique != "RLL" {
		t.Errorf("technique = %q", l.Technique)
	}
}

func TestRLLWrongKeysCorrupt(t *testing.T) {
	orig := gen.C17()
	rng := rand.New(rand.NewSource(2))
	l, err := RLL(orig, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit flip of the correct key must corrupt at least
	// one input pattern (XOR locks guarantee this).
	for b := 0; b < 4; b++ {
		wrong := append([]bool(nil), l.Key...)
		wrong[b] = !wrong[b]
		if exhaustiveEquiv(t, orig, l, wrong) {
			t.Errorf("flipping key bit %d leaves function unchanged", b)
		}
	}
}

func TestRLLOriginalUntouched(t *testing.T) {
	orig := gen.C17()
	before := orig.NumGates()
	rng := rand.New(rand.NewSource(3))
	if _, err := RLL(orig, 3, rng); err != nil {
		t.Fatal(err)
	}
	if orig.NumGates() != before || orig.NumKeys() != 0 {
		t.Error("RLL mutated the input circuit")
	}
}

func TestRLLErrors(t *testing.T) {
	orig := gen.C17()
	rng := rand.New(rand.NewSource(4))
	if _, err := RLL(orig, 0, rng); err == nil {
		t.Error("want error for 0 keys")
	}
	if _, err := RLL(orig, 100, rng); err == nil {
		t.Error("want error for more keys than wires")
	}
	l, _ := RLL(orig, 2, rng)
	if _, err := RLL(l.Circuit, 2, rng); err == nil {
		t.Error("want error for re-locking a locked circuit")
	}
}

func TestRLLOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for seed := int64(0); seed < 5; seed++ {
		orig := gen.Random("r", 10, 120, 8, seed)
		l, err := RLL(orig, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !sampledEquiv(orig, l, l.Key, 100, rng) {
			t.Errorf("seed %d: correct key fails", seed)
		}
		wrong := append([]bool(nil), l.Key...)
		wrong[0] = !wrong[0]
		if sampledEquiv(orig, l, wrong, 200, rng) {
			t.Errorf("seed %d: wrong key appears functional", seed)
		}
	}
}

func TestSLLCorrectKeyRestoresFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	orig := gen.Random("s", 12, 200, 10, 77)
	l, err := SLL(orig, 24, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Circuit.NumKeys() != 24 {
		t.Fatalf("key width %d", l.Circuit.NumKeys())
	}
	if !sampledEquiv(orig, l, l.Key, 150, rng) {
		t.Error("correct key does not restore function")
	}
	if l.Technique != "SLL" {
		t.Errorf("technique = %q", l.Technique)
	}
}

func TestSLLWrongKeyCorrupts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := gen.Random("s", 12, 200, 10, 78)
	l, err := SLL(orig, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	for i := range wrong {
		wrong[i] = !wrong[i]
	}
	if sampledEquiv(orig, l, wrong, 200, rng) {
		t.Error("all-flipped key appears functional")
	}
}

func TestSLLKeyGatesInterfere(t *testing.T) {
	// Structural property: at least some pairs of SLL key gates must
	// share fanout cone without dominating each other. We verify the
	// selection produced interconnected key gates by checking that key
	// gate cones overlap pairwise more often than not for small sets.
	rng := rand.New(rand.NewSource(8))
	orig := gen.Random("s", 12, 300, 6, 79)
	l, err := SLL(orig, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := l.Circuit
	// Find the key-gate outputs (gates named kg_*).
	var kgs []int
	for id := range c.Gates {
		if len(c.Gates[id].Name) > 3 && c.Gates[id].Name[:3] == "kg_" {
			kgs = append(kgs, id)
		}
	}
	if len(kgs) != 6 {
		t.Fatalf("found %d key gates", len(kgs))
	}
	overlaps := 0
	for i := 0; i < len(kgs); i++ {
		ci := c.OutputCone(kgs[i])
		for j := i + 1; j < len(kgs); j++ {
			cj := c.OutputCone(kgs[j])
			for id := range ci {
				if ci[id] && cj[id] {
					overlaps++
					break
				}
			}
		}
	}
	if overlaps == 0 {
		t.Error("no pair of SLL key gates shares a fanout cone")
	}
}

func TestSLLErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := SLL(gen.C17(), 0, rng); err == nil {
		t.Error("want error for 0 keys")
	}
	if _, err := SLL(gen.C17(), 50, rng); err == nil {
		t.Error("want error for too many keys")
	}
}

func TestSFLLHD0CorrectKeyRestores(t *testing.T) {
	orig := gen.C17()
	rng := rand.New(rand.NewSource(10))
	l, err := SFLLHD(orig, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustiveEquiv(t, orig, l, l.Key) {
		t.Error("correct key does not restore c17 under SFLL-HD^0")
	}
	if l.Technique != "SFLL-HD^0" {
		t.Errorf("technique = %q", l.Technique)
	}
}

func TestSFLLHD0WrongKeyCorruptsExactCubes(t *testing.T) {
	// For SFLL-HD^0 a wrong key K corrupts exactly the inputs whose
	// protected bits equal K or equal the secret (double flip cancels
	// nowhere since flip* and flip disagree exactly there).
	orig := gen.C17()
	rng := rand.New(rand.NewSource(11))
	l, err := SFLLHD(orig, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[2] = !wrong[2]
	diffs := 0
	pi := make([]bool, 5)
	for m := 0; m < 32; m++ {
		for b := 0; b < 5; b++ {
			pi[b] = m>>uint(b)&1 == 1
		}
		a := orig.Eval(pi, nil, nil)
		bo := l.Circuit.Eval(pi, wrong, nil)
		for i := range a {
			if a[i] != bo[i] {
				diffs++
				break
			}
		}
	}
	// 4 protected bits of 5 inputs: the wrong-key and secret cubes each
	// cover 2 of 32 patterns → exactly 4 corrupted patterns.
	if diffs != 4 {
		t.Errorf("wrong key corrupts %d/32 patterns, want 4", diffs)
	}
}

func TestSFLLHDNonZeroH(t *testing.T) {
	orig := gen.C17()
	for h := 0; h <= 4; h++ {
		rng := rand.New(rand.NewSource(int64(20 + h)))
		l, err := SFLLHD(orig, 4, h, rng)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if !exhaustiveEquiv(t, orig, l, l.Key) {
			t.Errorf("h=%d: correct key fails", h)
		}
		// A single-bit-flipped key is never equivalent under SFLL-HD
		// (unlike the antipodal key, which IS equivalent when
		// h == keyBits-h): pick X at distance h from the secret with
		// the flipped position among the differing bits; then
		// HD(X, wrong) = h-1 and the predicates disagree.
		wrong := append([]bool(nil), l.Key...)
		wrong[1] = !wrong[1]
		if exhaustiveEquiv(t, orig, l, wrong) {
			t.Errorf("h=%d: single-bit-flipped key appears functional", h)
		}
	}
}

func TestSFLLHDProtectedOutput(t *testing.T) {
	orig := gen.C17()
	rng := rand.New(rand.NewSource(30))
	l, err := SFLLHDOutput(orig, 3, 0, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustiveEquiv(t, orig, l, l.Key) {
		t.Error("correct key fails with protected output 1")
	}
	// A wrong key must only ever corrupt output 1.
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0]
	pi := make([]bool, 5)
	for m := 0; m < 32; m++ {
		for b := 0; b < 5; b++ {
			pi[b] = m>>uint(b)&1 == 1
		}
		a := orig.Eval(pi, nil, nil)
		bo := l.Circuit.Eval(pi, wrong, nil)
		if a[0] != bo[0] {
			t.Fatalf("wrong key corrupted unprotected output 0 at %v", pi)
		}
	}
}

func TestSFLLHDErrors(t *testing.T) {
	orig := gen.C17()
	rng := rand.New(rand.NewSource(31))
	if _, err := SFLLHD(orig, 0, 0, rng); err == nil {
		t.Error("want error for 0 keys")
	}
	if _, err := SFLLHD(orig, 6, 0, rng); err == nil {
		t.Error("want error for keyBits > inputs")
	}
	if _, err := SFLLHD(orig, 4, 5, rng); err == nil {
		t.Error("want error for h > keyBits")
	}
	if _, err := SFLLHD(orig, 4, -1, rng); err == nil {
		t.Error("want error for negative h")
	}
	if _, err := SFLLHDOutput(orig, 4, 0, 9, rng); err == nil {
		t.Error("want error for protected output out of range")
	}
	l, _ := RLL(orig, 2, rng)
	if _, err := SFLLHD(l.Circuit, 2, 0, rng); err == nil {
		t.Error("want error for locking a locked circuit")
	}
}

func TestSFLLHDOnLargerCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	orig := gen.Random("big", 24, 400, 12, 55)
	l, err := SFLLHD(orig, 12, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !sampledEquiv(orig, l, l.Key, 300, rng) {
		t.Error("correct key fails on larger circuit")
	}
}

func TestPopcountCircuit(t *testing.T) {
	// Build popcount over 7 free inputs and compare to bits.OnesCount.
	c := circuit.New("pc")
	var ins []int
	for i := 0; i < 7; i++ {
		ins = append(ins, c.AddInput(""))
	}
	sum := popcount(c, ins, "t")
	for _, s := range sum {
		c.AddOutput(s, "")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	pi := make([]bool, 7)
	for m := 0; m < 128; m++ {
		want := 0
		for b := 0; b < 7; b++ {
			pi[b] = m>>uint(b)&1 == 1
			if pi[b] {
				want++
			}
		}
		out := c.Eval(pi, nil, nil)
		got := 0
		for i, v := range out {
			if v {
				got |= 1 << uint(i)
			}
		}
		if got != want {
			t.Fatalf("popcount(%07b) = %d, want %d", m, got, want)
		}
	}
}

func TestHammingEqualsCircuit(t *testing.T) {
	for h := 0; h <= 5; h++ {
		c := circuit.New("he")
		var ins []int
		for i := 0; i < 5; i++ {
			ins = append(ins, c.AddInput(""))
		}
		p := hammingEquals(c, ins, h, "t")
		c.AddOutput(p, "")
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		pi := make([]bool, 5)
		for m := 0; m < 32; m++ {
			ones := 0
			for b := 0; b < 5; b++ {
				pi[b] = m>>uint(b)&1 == 1
				if pi[b] {
					ones++
				}
			}
			got := c.Eval(pi, nil, nil)[0]
			if got != (ones == h) {
				t.Fatalf("h=%d: predicate(%05b) = %v, want %v", h, m, got, ones == h)
			}
		}
	}
}

func TestInsertKeyGateRewiresOutputs(t *testing.T) {
	// Locking a wire that directly drives an output must rewire the PO.
	c := circuit.New("po")
	a := c.AddInput("a")
	n := c.AddGate(circuit.Not, "n", a)
	c.AddOutput(n, "y")
	bit := insertKeyGate(c, n, true, "keyinput0")
	if !bit {
		t.Error("XNOR key gate correct bit should be 1")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{true}, []bool{true}, nil)[0]; got != false {
		t.Errorf("locked NOT(1) with correct key = %v, want false", got)
	}
	if got := c.Eval([]bool{true}, []bool{false}, nil)[0]; got != true {
		t.Errorf("locked NOT(1) with wrong key = %v, want true", got)
	}
}

func TestCostVersus(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	orig := gen.Random("cost", 12, 100, 6, 9)
	l, err := RLL(orig, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	o := l.CostVersus(orig)
	if o.OrigGates != 100 || o.KeyBits != 10 {
		t.Errorf("overhead = %+v", o)
	}
	// RLL adds exactly one XOR/XNOR per key bit.
	if o.ExtraGates != 10 {
		t.Errorf("RLL extra gates = %d, want 10", o.ExtraGates)
	}
	if o.GatePercent != 10 {
		t.Errorf("percent = %v", o.GatePercent)
	}
	// SFLL adds the two comparator trees: overhead grows with key width.
	s1, _ := SFLLHD(orig, 4, 0, rand.New(rand.NewSource(1)))
	s2, _ := SFLLHD(orig, 10, 0, rand.New(rand.NewSource(1)))
	if s2.CostVersus(orig).ExtraGates <= s1.CostVersus(orig).ExtraGates {
		t.Error("SFLL overhead should grow with key width")
	}
}

func TestLockedKeyWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	orig := gen.Random("w", 10, 80, 6, 3)
	for _, tc := range []struct {
		name string
		mk   func() (*Locked, error)
	}{
		{"RLL", func() (*Locked, error) { return RLL(orig, 8, rng) }},
		{"SLL", func() (*Locked, error) { return SLL(orig, 8, rng) }},
		{"SFLL", func() (*Locked, error) { return SFLLHD(orig, 8, 0, rng) }},
	} {
		l, err := tc.mk()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(l.Key) != l.Circuit.NumKeys() {
			t.Errorf("%s: key %d vs circuit %d", tc.name, len(l.Key), l.Circuit.NumKeys())
		}
	}
}

func BenchmarkRLL64OnC3540Scale8(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	orig := bm.BuildScaled(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, err := RLL(orig, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSFLLHD16OnC3540Scale8(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	orig := bm.BuildScaled(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		if _, err := SFLLHD(orig, 16, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}
