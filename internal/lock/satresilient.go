package lock

import (
	"fmt"
	"math/rand"

	"statsat/internal/circuit"
)

// AntiSAT implements the Anti-SAT block (Xie & Srivastava, CHES'16 —
// reference [17] of the paper): two complementary AND-comparator
// functions over the same protected inputs,
//
//	f = AND(X_p ⊕ K1) ∧ ¬AND(X_p ⊕ K2),
//
// XOR-ed into one primary output. f is identically 0 exactly when
// K1 == K2, so every key (r, r) is correct; any K1 ≠ K2 corrupts at
// least the input X_p = ¬K1. Each distinguishing input eliminates only
// a handful of wrong keys, which is what makes the classic SAT attack
// take ~2^(keyBits/2) iterations.
//
// keyBits must be even: the first half drives K1, the second K2.
func AntiSAT(orig *circuit.Circuit, keyBits int, rng *rand.Rand) (*Locked, error) {
	if keyBits <= 0 {
		return nil, ErrNoKeys
	}
	if keyBits%2 != 0 {
		return nil, fmt.Errorf("lock: Anti-SAT needs an even key width, got %d", keyBits)
	}
	if orig.NumKeys() != 0 {
		return nil, fmt.Errorf("lock: circuit %q already carries %d key inputs", orig.Name, orig.NumKeys())
	}
	n := keyBits / 2
	if n > orig.NumPIs() {
		return nil, fmt.Errorf("lock: Anti-SAT needs %d protected inputs, circuit has %d", n, orig.NumPIs())
	}
	if orig.NumPOs() == 0 {
		return nil, fmt.Errorf("lock: circuit %q has no outputs to protect", orig.Name)
	}
	c := orig.Clone()
	c.Name = orig.Name + "-antisat"
	perm := rng.Perm(c.NumPIs())[:n]
	prot := make([]int, n)
	for i, p := range perm {
		prot[i] = c.PIs[p]
	}
	// Key inputs: K1 then K2.
	k1 := make([]int, n)
	k2 := make([]int, n)
	for i := 0; i < n; i++ {
		k1[i] = c.AddKey(fmt.Sprintf("keyinput%d", i))
	}
	for i := 0; i < n; i++ {
		k2[i] = c.AddKey(fmt.Sprintf("keyinput%d", n+i))
	}
	and1 := comparatorAND(c, prot, k1, "as1")
	and2 := comparatorAND(c, prot, k2, "as2")
	n2 := c.AddGate(circuit.Not, "as_n2", and2)
	f := c.AddGate(circuit.And, "as_f", and1, n2)
	drv := c.POs[0]
	c.POs[0] = c.AddGate(circuit.Xor, "as_flip", drv, f)

	// Correct key: K1 = K2 = r.
	r := make([]bool, n)
	for i := range r {
		r[i] = rng.Intn(2) == 1
	}
	key := append(append([]bool(nil), r...), r...)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("lock: Anti-SAT produced invalid netlist: %w", err)
	}
	return &Locked{Circuit: c, Key: key, Technique: "Anti-SAT"}, nil
}

// comparatorAND builds AND over (x_i ⊕ k_i) — true exactly when
// X == ¬K.
func comparatorAND(c *circuit.Circuit, xs, ks []int, prefix string) int {
	eqs := make([]int, len(xs))
	for i := range xs {
		eqs[i] = c.AddGate(circuit.Xor, fmt.Sprintf("%s_x%d", prefix, i), xs[i], ks[i])
	}
	return andTree(c, eqs, prefix+"_and")
}

// SARLock implements SARLock (Yasin et al., HOST'16 — reference [18]
// of the paper): the protected output is flipped for the single input
// pattern that matches the key, except when the key is the correct
// one:
//
//	flip = [X_p == K] ∧ [K ≠ K*],
//
// with K* hardwired. Every distinguishing input eliminates exactly one
// wrong key, forcing the classic SAT attack through ~2^keyBits
// iterations.
func SARLock(orig *circuit.Circuit, keyBits int, rng *rand.Rand) (*Locked, error) {
	if keyBits <= 0 {
		return nil, ErrNoKeys
	}
	if orig.NumKeys() != 0 {
		return nil, fmt.Errorf("lock: circuit %q already carries %d key inputs", orig.Name, orig.NumKeys())
	}
	if keyBits > orig.NumPIs() {
		return nil, fmt.Errorf("lock: SARLock needs %d protected inputs, circuit has %d", keyBits, orig.NumPIs())
	}
	if orig.NumPOs() == 0 {
		return nil, fmt.Errorf("lock: circuit %q has no outputs to protect", orig.Name)
	}
	c := orig.Clone()
	c.Name = orig.Name + "-sarlock"
	perm := rng.Perm(c.NumPIs())[:keyBits]
	prot := make([]int, keyBits)
	for i, p := range perm {
		prot[i] = c.PIs[p]
	}
	keys := make([]int, keyBits)
	for i := range keys {
		keys[i] = c.AddKey(fmt.Sprintf("keyinput%d", i))
	}
	// [X_p == K]: AND over XNOR(x_i, k_i).
	eqs := make([]int, keyBits)
	for i := range eqs {
		eqs[i] = c.AddGate(circuit.Xnor, fmt.Sprintf("sar_eq%d", i), prot[i], keys[i])
	}
	match := andTree(c, eqs, "sar_match")

	// [K == K*] with K* hardwired.
	kstar := make([]bool, keyBits)
	for i := range kstar {
		kstar[i] = rng.Intn(2) == 1
	}
	eqk := make([]int, keyBits)
	for i := range eqk {
		if kstar[i] {
			eqk[i] = c.AddGate(circuit.Buf, fmt.Sprintf("sar_kc%d", i), keys[i])
		} else {
			eqk[i] = c.AddGate(circuit.Not, fmt.Sprintf("sar_kc%d", i), keys[i])
		}
	}
	isCorrect := andTree(c, eqk, "sar_kand")
	notCorrect := c.AddGate(circuit.Not, "sar_nk", isCorrect)
	flip := c.AddGate(circuit.And, "sar_flip", match, notCorrect)
	drv := c.POs[0]
	c.POs[0] = c.AddGate(circuit.Xor, "sar_out", drv, flip)

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("lock: SARLock produced invalid netlist: %w", err)
	}
	return &Locked{Circuit: c, Key: kstar, Technique: "SARLock"}, nil
}
