package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
)

// Cancellation causes distinguishable in job status output.
var (
	errClientCancel = errors.New("job cancelled by client request")
	errShutdown     = errors.New("server shutting down")
)

// Config parameterises a Server. Zero values pick serviceable
// defaults.
type Config struct {
	// Workers bounds concurrently running jobs (default: GOMAXPROCS).
	Workers int
	// MaxJobs bounds retained jobs (store capacity; default 256).
	MaxJobs int
	// QueueDepth bounds jobs waiting for a worker (default: 2*MaxJobs).
	QueueDepth int
	// MaxBodyBytes bounds the POST /v1/jobs request body — netlist
	// uploads included (default 8 MiB).
	MaxBodyBytes int64
	// TraceBuffer is each job's trace replay-ring capacity in events
	// (default 4096; see trace.Stream).
	TraceBuffer int
	// DataDir, when set, enables the durable job fabric: jobs, specs,
	// state transitions, oracle tapes and checkpoints are logged to a
	// write-ahead log under the directory, trace streams spill to
	// NDJSON files, and a restarted server lists terminal jobs,
	// re-enqueues queued ones and resumes running ones from their last
	// recorded state (docs/SERVER.md "Persistence and recovery").
	// Empty keeps the in-memory fabric — the default.
	DataDir string
	// Logf, if set, receives one line per lifecycle transition.
	Logf func(format string, args ...interface{})

	// ckptHook (tests only) observes each durable checkpoint append:
	// the job ID plus that job's running checkpoint count, invoked
	// synchronously from the checkpoint sink — i.e. while the engine is
	// blocked at the Step boundary. Crash-recovery tests use it to
	// snapshot the data directory at a deterministic mid-run point.
	ckptHook func(jobID string, n int)
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxJobs
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
}

// Server is the statsatd HTTP handler plus its worker pool and job
// store. Create with New, wire into an http.Server, call Start to
// begin executing jobs, and Shutdown to drain. Server implements
// http.Handler.
type Server struct {
	cfg   Config
	store JobStore
	mux   *http.ServeMux

	// queue is the pull queue: workers take the next admitted job
	// whenever they free up, the same shape as the experiment
	// scheduler's shared-queue pool (internal/exp).
	queue WorkQueue
	wg    sync.WaitGroup

	// spillDir is the durable trace spill directory ("" without
	// persistence); resume holds recovered non-terminal jobs awaiting
	// re-enqueue at Start.
	spillDir string
	resume   []*Job

	mu         sync.Mutex
	started    bool
	closed     bool
	base       context.Context
	baseCancel context.CancelCauseFunc
}

// New builds an idle server; no goroutines run until Start (the WAL
// writer, on the persistent path, is the one exception). With
// cfg.DataDir set, New replays the write-ahead log: terminal jobs are
// listed immediately, non-terminal ones are re-enqueued when Start
// runs, and the log is compacted to the surviving jobs.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{cfg: cfg}
	if cfg.DataDir == "" {
		s.store = newMemStore(cfg.MaxJobs)
		s.queue = newMemQueue(cfg.QueueDepth)
	} else {
		store, queue, resume, err := openPersistent(cfg)
		if err != nil {
			return nil, err
		}
		s.store, s.queue, s.resume = store, queue, resume
		s.spillDir = filepath.Join(cfg.DataDir, "trace")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s, nil
}

// Start launches the worker pool and re-enqueues recovered jobs. ctx
// is the base context every job's context derives from: cancelling it
// interrupts all running jobs (each flushes an `interrupted` trace
// event and publishes its partial result), but the pool itself drains
// only via Shutdown.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.base, s.baseCancel = context.WithCancelCause(ctx)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	resume := s.resume
	s.resume = nil
	for _, j := range resume {
		j.ctx, j.cancel = context.WithCancelCause(s.base)
	}
	s.mu.Unlock()

	for _, j := range resume {
		if s.queue.Enqueue(j) {
			s.logf("statsatd: job %s recovered (%s on %s, %d taped interactions)",
				j.ID, j.mat.attack, j.mat.circuit.Name, len(j.tape))
		} else {
			j.finish(StateFailed, nil, errors.New("server: queue full at recovery"))
			j.cancel(nil)
		}
	}
	s.logf("statsatd: %d workers, %d job capacity", s.cfg.Workers, s.cfg.MaxJobs)
}

// worker pulls admitted jobs until the queue closes. Jobs cancelled
// while queued fail tryStart inside execute and are skipped.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Take()
		if !ok {
			return
		}
		s.logf("statsatd: job %s starting (%s on %s)", j.ID, j.mat.attack, j.mat.circuit.Name)
		s.startSpill(j)
		j.execute(j.ctx)
		j.cancel(nil) // release the job context's resources
		s.logf("statsatd: job %s %s", j.ID, j.State())
	}
}

// Shutdown drains the server: submissions are refused from this point,
// every queued or running job is cancelled with a shutdown cause
// (running attacks stop at the engine's next interrupt check, flush
// the `interrupted` trace event and keep their best-effort partial
// outcome), and the worker pool exits. Once the pool is idle the job
// store is closed (flushing the WAL on the persistent path). Blocks
// until the pool is idle or ctx expires. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return s.store.Close()
	}
	first := !s.closed
	if first {
		s.closed = true
		s.queue.Close()
	}
	cancel := s.baseCancel
	s.mu.Unlock()

	if first {
		s.logf("statsatd: shutting down")
		cancel(errShutdown)
		// Settle jobs still waiting in the queue so their streams close
		// and Done waiters release even before a worker pops them.
		for _, j := range s.store.List() {
			if j.State() == StateQueued {
				j.Cancel(errShutdown)
			}
		}
	}

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		if first {
			if err := s.store.Close(); err != nil {
				s.logf("statsatd: closing job store: %v", err)
			}
		}
		s.logf("statsatd: drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// accepting reports whether submissions are currently admitted.
func (s *Server) accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && !s.closed
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// submitReply is the POST /v1/jobs response body.
type submitReply struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	mat, err := sp.materialize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j := newJob(&sp, mat, s.cfg.TraceBuffer)

	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, errShutdown)
		return
	}
	j.ctx, j.cancel = context.WithCancelCause(s.base)
	evicted, err := s.store.Add(j)
	if err != nil {
		s.mu.Unlock()
		j.cancel(nil)
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	s.store.Bind(j)
	if !s.queue.Enqueue(j) {
		s.store.Remove(j.ID)
		s.mu.Unlock()
		j.cancel(nil)
		httpError(w, http.StatusTooManyRequests, errors.New("server: job queue full"))
		return
	}
	s.mu.Unlock()

	for _, e := range evicted {
		s.removeSpill(e.ID)
	}
	s.logf("statsatd: job %s admitted (%s on %s)", j.ID, mat.attack, mat.circuit.Name)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, submitReply{ID: j.ID, State: j.State()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleTrace live-streams the job's trace as NDJSON (one
// docs/OBSERVABILITY.md event object per line): first the replay of
// everything still buffered, then each new event as the attack emits
// it. The response ends when the job reaches a terminal state (its
// stream closes) or the client goes away. For a terminal job recovered
// from a previous server life — whose in-memory ring is empty — the
// durable spill file is served instead.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	if s.spillDir != "" && j.stream.Closed() && j.stream.Len() == 0 {
		if f, err := os.Open(s.spillPath(j.ID)); err == nil {
			defer f.Close()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("Cache-Control", "no-store")
			w.WriteHeader(http.StatusOK)
			_, _ = io.Copy(w, f)
			return
		}
	}
	sub := j.stream.Subscribe(0)
	defer sub.Cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first event arrives
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			// Flush per batch: drain whatever is already queued before
			// paying the flush, so bursts cost one write.
			if len(sub.C) == 0 && flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleCancel interrupts the job and replies with its settled status
// — including the best-effort partial outcome the cancellation
// contract guarantees (docs/ARCHITECTURE.md). If the job cannot settle
// before the request's own context ends, the in-flight status is
// returned instead.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	j.Cancel(errClientCancel)
	select {
	case <-j.Done():
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleHealth reports liveness plus the per-state job census and
// whether the durable fabric is on (docs/SERVER.md).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	states := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0,
		StateCancelled: 0, StateFailed: 0,
	}
	jobs := s.store.List()
	for _, j := range jobs {
		states[j.State()]++
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":      "ok",
		"accepting":   s.accepting(),
		"jobs":        len(jobs),
		"states":      states,
		"workers":     s.cfg.Workers,
		"persistence": s.store.Persistent(),
	})
}

// spillPath is the durable NDJSON trace file for a job ID.
func (s *Server) spillPath(id string) string {
	return filepath.Join(s.spillDir, id+".jsonl")
}

// removeSpill drops an evicted job's trace file (persistence only).
func (s *Server) removeSpill(id string) {
	if s.spillDir == "" {
		return
	}
	_ = os.Remove(s.spillPath(id))
}

// startSpill mirrors the job's trace stream into its spill file. The
// file is truncated first: a resumed job re-emits its full event
// history from iteration zero, so the rewrite is the complete record.
// The goroutine drains until the stream closes at job settlement and
// is counted in s.wg so Shutdown waits for the final flush.
func (s *Server) startSpill(j *Job) {
	if s.spillDir == "" {
		return
	}
	f, err := os.OpenFile(s.spillPath(j.ID), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.logf("statsatd: job %s trace spill: %v", j.ID, err)
		return
	}
	sub := j.stream.Subscribe(s.cfg.TraceBuffer)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer f.Close()
		enc := json.NewEncoder(f)
		for ev := range sub.C {
			if err := enc.Encode(ev); err != nil {
				s.logf("statsatd: job %s trace spill: %v", j.ID, err)
				sub.Cancel()
				return
			}
		}
	}()
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
