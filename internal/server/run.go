package server

import (
	"context"
	"errors"
	"time"

	"statsat"
)

// execute runs an admitted job to a terminal state. ctx is the job's
// own context (derived from the server's base context at admission, so
// both DELETE /v1/jobs/{id} and server shutdown interrupt it); the
// spec's timeout, when set, is layered on top here so it measures run
// time, not queue time.
//
// Interrupted runs (errors.Is ErrInterrupted) keep their best-effort
// partial outcome and settle as cancelled — the engine has already
// flushed the `interrupted` trace event into the job's stream by the
// time the *Ctx entry point returns (docs/ARCHITECTURE.md).
func (j *Job) execute(ctx context.Context) {
	if !j.tryStart() {
		return // cancelled while queued
	}
	if j.Spec.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	out, err := j.runAttack(ctx)
	switch {
	case err == nil:
		j.finish(StateDone, out, nil)
	case errors.Is(err, statsat.ErrInterrupted):
		j.finish(StateCancelled, out, err)
	case errors.Is(err, statsat.ErrNoInstances):
		// Every instance died: the attack ran to completion and the
		// empty key set is the (reportable) answer, not a server fault.
		j.finish(StateDone, out, err)
	default:
		j.finish(StateFailed, out, err)
	}
}

// runAttack dispatches the job to the matching statsat facade *Ctx
// entry point and folds the engine-specific result into the uniform
// Outcome. A non-nil Outcome comes back with ErrInterrupted (the
// partial-result contract) as well as on success.
//
// On the persistent path the materialized oracle is wrapped in a
// journal: a recovered job first replays its taped interaction prefix
// (byte-identical answers, no chip queries), then goes live with the
// noise stream skipped to the tape's end — so a resumed attack's
// trajectory, keys and query counters match an uninterrupted run of
// the same spec exactly (docs/ARCHITECTURE.md "Checkpoint contract").
func (j *Job) runAttack(ctx context.Context) (*Outcome, error) {
	mat, o := j.mat, j.Spec.Options
	orc := mat.orc
	if j.tape != nil || j.sinks.tape != nil {
		orc = statsat.NewJournalOracle(orc, j.tape, j.sinks.tape)
	}
	epsG := o.EpsG
	if epsG == 0 {
		epsG = j.Spec.Eps
	}
	switch mat.attack {
	case "statsat":
		opts := statsat.Options{
			Ns: o.Ns, NSatis: o.NSatis, NEval: o.NEval, NInst: o.NInst,
			ULambda: o.ULambda, ELambda: o.ELambda, EpsG: epsG,
			MaxTotalIter: o.MaxIter, Seed: j.Spec.Seed, Parallel: o.Parallel,
			PortfolioWorkers: o.PortfolioWorkers, PortfolioRacers: o.PortfolioRacers,
			Tracer: j.tracer(), Checkpoint: j.sinks.ckpt,
		}
		res, err := statsat.AttackCtx(ctx, mat.locked, orc, opts)
		if res == nil {
			return nil, err
		}
		out := &Outcome{
			Iterations:    res.TotalIterations,
			OracleQueries: res.OracleQueries,
			EvalQueries:   res.EvalQueries,
			AttackNs:      res.AttackDuration.Nanoseconds(),
			Instances:     res.InstancesCreated,
			Forks:         res.Forks,
			ForceProceeds: res.ForceProceeds,
			DeadInstances: res.DeadInstances,
			Truncated:     res.Truncated,
		}
		for _, k := range res.Keys {
			out.Keys = append(out.Keys, KeyReport{
				Key: bitString(k.Key), FM: k.FM, HD: k.HD,
				Correct:    j.keyCorrect(k.Key),
				Iterations: k.Iterations, Instance: k.Instance,
			})
		}
		return j.noteInterrupt(out, err), err
	case "sat":
		res, err := statsat.StandardSATOptCtx(ctx, mat.locked, orc, statsat.SATOptions{
			MaxIter: o.MaxIter, Tracer: j.tracer(), Checkpoint: j.sinks.ckpt,
			PortfolioWorkers: o.PortfolioWorkers, PortfolioRacers: o.PortfolioRacers,
		})
		if res == nil {
			return nil, err
		}
		return j.noteInterrupt(j.baselineOutcome(res), err), err
	case "psat":
		res, err := statsat.PSATCtx(ctx, mat.locked, orc, statsat.PSATOptions{
			Ns: o.Ns, MaxIter: o.MaxIter, Seed: j.Spec.Seed, Tracer: j.tracer(),
			Checkpoint:       j.sinks.ckpt,
			PortfolioWorkers: o.PortfolioWorkers, PortfolioRacers: o.PortfolioRacers,
		})
		if res == nil {
			return nil, err
		}
		return j.noteInterrupt(j.baselineOutcome(res), err), err
	case "appsat":
		res, err := statsat.AppSATCtx(ctx, mat.locked, orc, statsat.AppSATOptions{
			MaxIter: o.MaxIter, Seed: j.Spec.Seed, Tracer: j.tracer(),
			Checkpoint:       j.sinks.ckpt,
			PortfolioWorkers: o.PortfolioWorkers, PortfolioRacers: o.PortfolioRacers,
		})
		if res == nil {
			return nil, err
		}
		out := j.baselineOutcome(&res.Result)
		out.Rounds = res.Rounds
		out.EarlyExit = res.EarlyExit
		return j.noteInterrupt(out, err), err
	}
	return nil, specErrf("unknown attack %q", mat.attack) // unreachable after materialize
}

// baselineOutcome folds a single-instance engine result.
func (j *Job) baselineOutcome(res *statsat.BaselineResult) *Outcome {
	out := &Outcome{
		Iterations:    res.Iterations,
		OracleQueries: res.OracleQueries,
		AttackNs:      res.Duration.Nanoseconds(),
		Failed:        res.Failed,
	}
	if res.Key != nil {
		out.Keys = []KeyReport{{
			Key: bitString(res.Key), Correct: j.keyCorrect(res.Key),
			Iterations: res.Iterations,
		}}
	}
	return out
}

// noteInterrupt stamps the partial-result marker on interrupted
// outcomes.
func (j *Job) noteInterrupt(out *Outcome, err error) *Outcome {
	if err != nil && errors.Is(err, statsat.ErrInterrupted) {
		out.Interrupted = true
		out.InterruptCause = err.Error()
	}
	return out
}

// keyCorrect decides exact key equivalence against the ground truth.
// The server always knows the true key (it simulates the chip), so
// every reported key carries a definitive verdict — equivalence-check
// failures (malformed widths) just report false.
func (j *Job) keyCorrect(key []bool) bool {
	if len(key) != len(j.mat.key) {
		return false
	}
	eq, err := statsat.KeysEquivalent(j.mat.locked, key, j.mat.key)
	return err == nil && eq
}

// bitString renders a key as the wire-format 0/1 string.
func bitString(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
