// Package server implements statsatd, the attack-as-a-service job
// server: a stdlib-only net/http daemon that accepts attack jobs
// (named benchmark or uploaded netlist, any of the four attack kinds,
// the full option set), runs them on a bounded worker pool, and
// exposes their progress, live trace stream and results over a small
// REST API. The API, job lifecycle and cancellation semantics are
// documented in docs/SERVER.md.
//
// The server is deliberately a thin composition of primitives that
// already exist elsewhere in the repository: jobs execute through the
// public statsat facade's *Ctx entry points, live streaming rides on
// trace.Stream, status counters on engine.Progress, cancellation on
// the engine's context contract (docs/ARCHITECTURE.md), and the
// worker pool reuses the pull-queue shape of the experiment scheduler.
package server

import (
	"errors"
	"fmt"
	"strings"

	"statsat"
	"statsat/internal/netio"
)

// Spec is the wire form of one attack job (the POST /v1/jobs body).
// The target circuit comes from exactly one of two sources:
//
//   - Benchmark: a named Table I benchmark (plus "c17"), synthesised
//     at Scale and locked server-side with Lock/KeyBits/LockSeed — the
//     server knows the ground-truth key and reports per-key
//     correctness; or
//   - Netlist: an uploaded pre-locked netlist (bench or structural
//     Verilog source, decoded in memory) whose correct key the client
//     supplies in Key to activate the simulated oracle.
type Spec struct {
	// Attack selects the engine: "statsat" (default), "psat", "sat" or
	// "appsat".
	Attack string `json:"attack,omitempty"`

	// Benchmark names a built-in circuit (Table I suite or "c17").
	Benchmark string `json:"benchmark,omitempty"`
	// Scale divides the benchmark's gate count (1 = published size;
	// the experiment harness uses 8-48 for fast runs). Benchmark mode
	// only.
	Scale int `json:"scale,omitempty"`
	// Lock picks the server-side locking technique for benchmark jobs:
	// "rll" (default), "sll", "sfll", "antisat" or "sarlock".
	Lock string `json:"lock,omitempty"`
	// KeyBits is the lock's key width (default 8). Benchmark mode only.
	KeyBits int `json:"key_bits,omitempty"`
	// LockSeed seeds the locking randomness (default 1).
	LockSeed int64 `json:"lock_seed,omitempty"`

	// Netlist is an uploaded netlist source (the file contents, not a
	// path); Format names its serialisation ("bench" default,
	// "verilog"). Key is the activated chip's correct key as a 0/1
	// string. Netlist mode only.
	Netlist string `json:"netlist,omitempty"`
	Format  string `json:"format,omitempty"`
	Key     string `json:"key,omitempty"`

	// Eps is the oracle's gate error probability (0 = deterministic
	// chip). Seed drives the oracle noise and attack-side randomness.
	Eps  float64 `json:"eps,omitempty"`
	Seed int64   `json:"seed,omitempty"`

	// TimeoutMs bounds the job's run time; past it the attack is
	// interrupted exactly like a client cancellation and returns its
	// best-effort partial result (0 = no deadline).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// Options tunes the attack; zero values keep each engine's
	// defaults.
	Options SpecOptions `json:"options,omitempty"`
}

// SpecOptions mirrors the attack option sets (core.Options and the
// baselines' knobs) field-for-field where a job can usefully set them.
type SpecOptions struct {
	Ns      int     `json:"ns,omitempty"`
	NSatis  int     `json:"nsatis,omitempty"`
	NEval   int     `json:"neval,omitempty"`
	NInst   int     `json:"ninst,omitempty"`
	ULambda float64 `json:"ulambda,omitempty"`
	ELambda float64 `json:"elambda,omitempty"`
	// EpsG is the attacker's gate-error estimate for BER gating; 0
	// defaults to Eps (the server simulates the chip, so the "known
	// eps_g" assumption of §V costs nothing).
	EpsG     float64 `json:"epsg,omitempty"`
	MaxIter  int     `json:"max_iter,omitempty"`
	Parallel bool    `json:"parallel,omitempty"`
	// PortfolioWorkers / PortfolioRacers enable portfolio solver
	// racing for the job (docs/SOLVER.md); <= 1 workers keeps the
	// sequential path.
	PortfolioWorkers int `json:"portfolio_workers,omitempty"`
	PortfolioRacers  int `json:"portfolio_racers,omitempty"`
}

// attackKinds is the closed set of engines a job may request.
var attackKinds = map[string]bool{"statsat": true, "psat": true, "sat": true, "appsat": true}

// materialized is a validated, executable job: the locked netlist, the
// ground-truth key activating the simulated chip, and the oracle.
type materialized struct {
	locked  *statsat.Circuit
	key     []bool
	orc     statsat.Oracle
	attack  string
	circuit CircuitInfo
}

// CircuitInfo describes the attacked netlist's interface in job
// status responses.
type CircuitInfo struct {
	Name string `json:"name"`
	PIs  int    `json:"pis"`
	POs  int    `json:"pos"`
	Keys int    `json:"keys"`
}

// errSpec wraps every validation failure so the HTTP layer can map it
// to 400 instead of 500.
var errSpec = errors.New("invalid job spec")

func specErrf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", errSpec, fmt.Sprintf(format, args...))
}

// materialize validates the spec and builds the attack inputs. All
// failures here are client errors (bad spec), reported before the job
// is admitted to the queue.
func (sp *Spec) materialize() (*materialized, error) {
	attack := sp.Attack
	if attack == "" {
		attack = "statsat"
	}
	if !attackKinds[attack] {
		return nil, specErrf("unknown attack %q (want statsat, psat, sat or appsat)", attack)
	}
	if sp.Eps < 0 || sp.Eps > 1 {
		return nil, specErrf("eps %v out of [0,1]", sp.Eps)
	}
	if (sp.Benchmark == "") == (sp.Netlist == "") {
		return nil, specErrf("exactly one of benchmark or netlist must be set")
	}

	var locked *statsat.Circuit
	var key []bool
	var err error
	if sp.Benchmark != "" {
		locked, key, err = sp.buildBenchmark()
	} else {
		locked, key, err = sp.decodeNetlist()
	}
	if err != nil {
		return nil, err
	}

	var orc statsat.Oracle
	if sp.Eps > 0 {
		orc = statsat.NewNoisyOracle(locked, key, sp.Eps, sp.Seed+1)
	} else {
		orc = statsat.NewOracle(locked, key)
	}
	return &materialized{
		locked: locked, key: key, orc: orc, attack: attack,
		circuit: CircuitInfo{
			Name: locked.Name, PIs: locked.NumPIs(), POs: locked.NumPOs(), Keys: locked.NumKeys(),
		},
	}, nil
}

// buildBenchmark synthesises and locks a named benchmark server-side.
func (sp *Spec) buildBenchmark() (*statsat.Circuit, []bool, error) {
	if sp.Netlist != "" || sp.Key != "" {
		return nil, nil, specErrf("benchmark mode does not take netlist or key fields")
	}
	scale := sp.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 1 {
		return nil, nil, specErrf("scale %d out of range (want >= 1)", sp.Scale)
	}
	var orig *statsat.Circuit
	if sp.Benchmark == "c17" {
		orig = statsat.C17()
	} else {
		b, ok := statsat.BenchmarkByName(sp.Benchmark)
		if !ok {
			return nil, nil, specErrf("unknown benchmark %q", sp.Benchmark)
		}
		orig = b.BuildScaled(scale)
	}
	keyBits := sp.KeyBits
	if keyBits == 0 {
		keyBits = 8
	}
	if keyBits < 1 || keyBits > 64 {
		return nil, nil, specErrf("key_bits %d out of range (want 1..64)", sp.KeyBits)
	}
	lockSeed := sp.LockSeed
	if lockSeed == 0 {
		lockSeed = 1
	}
	tech := sp.Lock
	if tech == "" {
		tech = "rll"
	}
	var lk *statsat.Locked
	var err error
	switch tech {
	case "rll":
		lk, err = statsat.LockRLL(orig, keyBits, lockSeed)
	case "sll":
		lk, err = statsat.LockSLL(orig, keyBits, lockSeed)
	case "sfll":
		lk, err = statsat.LockSFLLHD(orig, keyBits, 1, lockSeed)
	case "antisat":
		lk, err = statsat.LockAntiSAT(orig, keyBits, lockSeed)
	case "sarlock":
		lk, err = statsat.LockSARLock(orig, keyBits, lockSeed)
	default:
		return nil, nil, specErrf("unknown lock %q (want rll, sll, sfll, antisat or sarlock)", tech)
	}
	if err != nil {
		return nil, nil, specErrf("locking %s with %s: %v", sp.Benchmark, tech, err)
	}
	return lk.Circuit, lk.Key, nil
}

// decodeNetlist parses an uploaded netlist straight from memory (no
// temp files) through the streaming front end — uploads can be
// 100k-gate netlists, and the JSON payload already holds one copy of
// the text — and checks the supplied key against its interface.
func (sp *Spec) decodeNetlist() (*statsat.Circuit, []bool, error) {
	if sp.Lock != "" || sp.KeyBits != 0 || sp.Scale != 0 {
		return nil, nil, specErrf("netlist mode does not take lock, key_bits or scale fields")
	}
	format, err := netio.ParseFormat(sp.Format)
	if err != nil {
		return nil, nil, specErrf("%v", err)
	}
	locked, err := netio.ReadFromStreaming(strings.NewReader(sp.Netlist), format)
	if err != nil {
		return nil, nil, specErrf("decoding netlist: %v", err)
	}
	if locked.NumKeys() == 0 {
		return nil, nil, specErrf("uploaded netlist %q has no key inputs (keyinput*)", locked.Name)
	}
	key, err := parseKeyBits(sp.Key, locked.NumKeys())
	if err != nil {
		return nil, nil, err
	}
	return locked, key, nil
}

// parseKeyBits decodes a 0/1 key string of the expected width.
func parseKeyBits(s string, want int) ([]bool, error) {
	if s == "" {
		return nil, specErrf("netlist mode needs the oracle's correct key (key field)")
	}
	if len(s) != want {
		return nil, specErrf("key has %d bits, circuit has %d key inputs", len(s), want)
	}
	key := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			key[i] = true
		default:
			return nil, specErrf("key must be a 0/1 string, found %q", c)
		}
	}
	return key, nil
}
