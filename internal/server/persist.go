// Durable job fabric: a JobStore/WorkQueue pair layered over
// internal/wal. Every record is a one-line JSON envelope (walRec);
// jobs, specs, lifecycle transitions, oracle tapes and engine
// checkpoints are all records in one log. Startup replays the log,
// rebuilds terminal jobs for listing, re-enqueues the rest with their
// recorded oracle tape (resume-by-re-execution; see docs/SERVER.md
// "Persistence and recovery"), and compacts the log to the survivors.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"statsat"
	"statsat/internal/wal"
)

// walRec record kinds.
const (
	recJob   = "job"   // admission: spec + created timestamp
	recState = "state" // lifecycle transition (terminal ones carry the outcome)
	recTape  = "tape"  // one live oracle interaction (oracle.TapeRecord)
	recCkpt  = "ckpt"  // engine checkpoint; written with an fsync barrier
	recEvict = "evict" // store eviction or admission rollback
)

// walRec is the JSON envelope framed into the write-ahead log. Unknown
// kinds are skipped on replay so older servers tolerate newer logs.
type walRec struct {
	T       string              `json:"t"`
	ID      string              `json:"id,omitempty"`
	At      int64               `json:"at,omitempty"` // unix nanoseconds
	Spec    json.RawMessage     `json:"spec,omitempty"`
	State   State               `json:"state,omitempty"`
	Err     string              `json:"err,omitempty"`
	Outcome *Outcome            `json:"outcome,omitempty"`
	Ckpt    *statsat.Checkpoint `json:"ckpt,omitempty"`
	Tape    *statsat.TapeRecord `json:"tape,omitempty"`
}

// walStore is the persistent JobStore: a memStore for lookups plus the
// write-ahead log as the source of truth across restarts. Log appends
// go through the wal writer goroutine, never under a mutex.
type walStore struct {
	mem      *memStore
	log      *wal.Log
	logf     func(format string, args ...interface{})
	ckptHook func(jobID string, n int) // tests only (Config.ckptHook)
}

func (s *walStore) warnf(format string, args ...interface{}) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// append marshals and frames one record; failures degrade durability,
// not the in-memory job fabric, so they are logged and swallowed.
func (s *walStore) append(r walRec, fsync bool) {
	b, err := json.Marshal(r)
	if err == nil {
		if fsync {
			err = s.log.AppendSync(b)
		} else {
			err = s.log.Append(b)
		}
	}
	if err != nil {
		s.warnf("statsatd: wal append (%s %s): %v", r.T, r.ID, err)
	}
}

// Add implements JobStore: register in memory, then log the admission
// and any evictions.
func (s *walStore) Add(j *Job) ([]*Job, error) {
	evicted, err := s.mem.Add(j)
	if err != nil {
		return nil, err
	}
	spec, merr := json.Marshal(j.Spec)
	if merr != nil {
		// Undo: a job whose spec cannot be logged must not outlive the
		// process believing it is durable.
		s.mem.Remove(j.ID)
		return nil, fmt.Errorf("server: encoding spec for wal: %w", merr)
	}
	s.append(walRec{T: recJob, ID: j.ID, At: time.Now().UnixNano(), Spec: spec}, false)
	for _, e := range evicted {
		s.append(walRec{T: recEvict, ID: e.ID}, false)
	}
	return evicted, nil
}

// Remove implements JobStore (admission rollback): the evict record
// supersedes the job's admission on replay.
func (s *walStore) Remove(id string) {
	s.mem.Remove(id)
	s.append(walRec{T: recEvict, ID: id}, false)
}

func (s *walStore) Get(id string) (*Job, bool) { return s.mem.Get(id) }
func (s *walStore) List() []*Job               { return s.mem.List() }
func (s *walStore) Len() int                   { return s.mem.Len() }
func (s *walStore) Persistent() bool           { return true }
func (s *walStore) Close() error               { return s.log.Close() }

// Bind implements JobStore: wire the job's durability hooks.
//   - transition: every lifecycle move becomes a state record; terminal
//     ones carry the outcome and fsync before Done waiters release.
//   - tape: each live oracle interaction is appended (group-committed,
//     no per-record fsync — the checkpoint is the barrier).
//   - ckpt: engine checkpoints append with fsync, making everything up
//     to the end of that iteration durable.
func (s *walStore) Bind(j *Job) {
	id := j.ID
	n := 0 // checkpoint count; sinks are invoked sequentially per job
	j.sinks = sinks{
		transition: s.transition,
		tape: func(r statsat.TapeRecord) {
			s.append(walRec{T: recTape, ID: id, Tape: &r}, false)
		},
		ckpt: func(c statsat.Checkpoint) {
			s.append(walRec{T: recCkpt, ID: id, Ckpt: &c}, true)
			if s.ckptHook != nil {
				n++
				s.ckptHook(id, n)
			}
		},
	}
}

// transition logs one lifecycle move; invoked by the job after its own
// state settles (outside j.mu).
func (s *walStore) transition(j *Job, st State) {
	r := walRec{T: recState, ID: j.ID, State: st, At: time.Now().UnixNano()}
	if st.Terminal() {
		r.Outcome = j.Outcome()
		if err := j.Err(); err != nil {
			r.Err = err.Error()
		}
	}
	s.append(r, st.Terminal())
}

// walQueue is the persistent WorkQueue: a memQueue plus a write-ahead
// queued record, so replay can tell admitted-and-enqueued jobs apart
// from half-admissions that never reached the queue.
type walQueue struct {
	mem *memQueue
	st  *walStore
}

// Enqueue implements WorkQueue. The queued record lands before the
// channel hand-off (write-ahead): if the hand-off fails the caller's
// rollback evict record supersedes it, and if the server crashes
// between the two the job is resurrected — the client was promised
// nothing either way.
func (q *walQueue) Enqueue(j *Job) bool {
	q.st.append(walRec{T: recState, ID: j.ID, State: StateQueued, At: time.Now().UnixNano()}, false)
	return q.mem.Enqueue(j)
}

func (q *walQueue) Take() (*Job, bool) { return q.mem.Take() }
func (q *walQueue) Close()             { q.mem.Close() }

// jobHistory is one job's state folded out of the replayed log.
type jobHistory struct {
	id      string
	spec    json.RawMessage
	created int64
	started int64 // last running-state timestamp
	ended   int64 // terminal-state timestamp
	queued  bool  // reached the work queue
	state   State // last recorded state ("" = admission only)
	errText string
	outcome *Outcome
	tape    []statsat.TapeRecord
	ckpt    *statsat.Checkpoint
	evicted bool
}

// openPersistent opens cfg.DataDir's job fabric: replay, rebuild,
// compact. Returned jobs in resume are non-terminal survivors the
// server re-enqueues at Start (their ctx is bound there).
func openPersistent(cfg Config) (*walStore, *walQueue, []*Job, error) {
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "trace"), 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	log, payloads, err := wal.Open(filepath.Join(cfg.DataDir, "jobs.wal"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: opening wal: %w", err)
	}
	st := &walStore{mem: newMemStore(cfg.MaxJobs), log: log, logf: cfg.Logf, ckptHook: cfg.ckptHook}
	q := &walQueue{mem: newMemQueue(cfg.QueueDepth), st: st}

	hists, order, maxSeq := foldLog(payloads, st.warnf)
	var (
		resume  []*Job
		compact [][]byte
	)
	for _, id := range order {
		h := hists[id]
		if h.evicted || !h.queued {
			continue // history only; a half-admission never ran
		}
		j, err := h.rebuild(cfg.TraceBuffer)
		if err != nil {
			st.warnf("statsatd: dropping job %s on recovery: %v", id, err)
			continue
		}
		if err := st.mem.adopt(j); err != nil {
			st.warnf("statsatd: dropping job %s on recovery: %v", id, err)
			continue
		}
		if !h.state.Terminal() {
			st.Bind(j)
			resume = append(resume, j)
		}
		compact = append(compact, h.encode(st.warnf)...)
	}
	st.mem.bumpSeq(maxSeq)
	if err := log.Rewrite(compact); err != nil {
		log.Close()
		return nil, nil, nil, fmt.Errorf("server: compacting wal: %w", err)
	}
	return st, q, resume, nil
}

// foldLog reduces the replayed payloads to per-job histories, keeping
// admission order and the highest job sequence number ever issued.
func foldLog(payloads [][]byte, warnf func(string, ...interface{})) (map[string]*jobHistory, []string, int64) {
	hists := map[string]*jobHistory{}
	var order []string
	var maxSeq int64
	for _, p := range payloads {
		var r walRec
		if err := json.Unmarshal(p, &r); err != nil {
			warnf("statsatd: skipping undecodable wal record: %v", err)
			continue
		}
		if r.T == recJob {
			if n, ok := idSeq(r.ID); ok && n > maxSeq {
				maxSeq = n
			}
			hists[r.ID] = &jobHistory{id: r.ID, spec: r.Spec, created: r.At}
			order = append(order, r.ID)
			continue
		}
		h, ok := hists[r.ID]
		if !ok {
			continue // record for a job whose admission was compacted away
		}
		switch r.T {
		case recState:
			h.state = r.State
			switch {
			case r.State == StateQueued:
				h.queued = true
			case r.State == StateRunning:
				h.started = r.At
			case r.State.Terminal():
				h.ended, h.outcome, h.errText = r.At, r.Outcome, r.Err
			}
		case recTape:
			if r.Tape != nil {
				h.tape = append(h.tape, *r.Tape)
			}
		case recCkpt:
			if r.Ckpt == nil {
				continue
			}
			if h.ckpt != nil && !r.Ckpt.Covers(*h.ckpt) {
				warnf("statsatd: job %s: non-monotone checkpoint dropped", r.ID)
				continue
			}
			h.ckpt = r.Ckpt
		case recEvict:
			h.evicted = true
		}
	}
	return hists, order, maxSeq
}

// rebuild turns a history back into a *Job. Terminal jobs come back
// frozen (closed stream, released Done) for listing; non-terminal ones
// come back queued with their oracle tape attached, ready for
// re-execution — the journal replays the tape so the resumed
// trajectory is identical to an uninterrupted run.
func (h *jobHistory) rebuild(traceBuf int) (*Job, error) {
	var sp Spec
	if err := json.Unmarshal(h.spec, &sp); err != nil {
		return nil, fmt.Errorf("decoding logged spec: %w", err)
	}
	mat, err := sp.materialize()
	if err != nil {
		return nil, fmt.Errorf("re-materializing spec: %w", err)
	}
	j := newJob(&sp, mat, traceBuf)
	j.ID = h.id
	if h.created > 0 {
		j.created = time.Unix(0, h.created)
	}
	if h.state.Terminal() {
		j.state = h.state
		j.outcome = h.outcome
		if h.errText != "" {
			j.err = fmt.Errorf("%s", h.errText)
		}
		if h.started > 0 {
			j.started = time.Unix(0, h.started)
		}
		if h.ended > 0 {
			j.finished = time.Unix(0, h.ended)
		}
		j.stream.Close()
		close(j.done)
		return j, nil
	}
	if err := statsat.ValidateTape(h.tape, mat.orc); err != nil {
		// A tape that no longer matches the oracle interface means the
		// spec materialized differently; restart the attack cleanly.
		return nil, fmt.Errorf("validating oracle tape: %w", err)
	}
	j.tape = h.tape
	return j, nil
}

// encode re-frames a surviving history for compaction: the admission,
// the collapsed lifecycle, and — for jobs that will resume — the tape
// and last checkpoint. Terminal jobs shed their tapes, which is where
// the log reclaims its space.
func (h *jobHistory) encode(warnf func(string, ...interface{})) [][]byte {
	var out [][]byte
	add := func(r walRec) {
		b, err := json.Marshal(r)
		if err != nil {
			warnf("statsatd: compacting job %s: %v", h.id, err)
			return
		}
		out = append(out, b)
	}
	add(walRec{T: recJob, ID: h.id, At: h.created, Spec: h.spec})
	add(walRec{T: recState, ID: h.id, State: StateQueued, At: h.created})
	if h.state.Terminal() {
		if h.started > 0 {
			add(walRec{T: recState, ID: h.id, State: StateRunning, At: h.started})
		}
		add(walRec{T: recState, ID: h.id, State: h.state, At: h.ended,
			Outcome: h.outcome, Err: h.errText})
		return out
	}
	for i := range h.tape {
		add(walRec{T: recTape, ID: h.id, Tape: &h.tape[i]})
	}
	if h.ckpt != nil {
		add(walRec{T: recCkpt, ID: h.id, Ckpt: h.ckpt})
	}
	return out
}

// Interface conformance (compile-time).
var (
	_ JobStore  = (*memStore)(nil)
	_ JobStore  = (*walStore)(nil)
	_ WorkQueue = (*memQueue)(nil)
	_ WorkQueue = (*walQueue)(nil)
)
