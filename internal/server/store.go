package server

import (
	"errors"
	"fmt"
	"sync"

	"statsat"
)

// ErrStoreFull is returned when a new job cannot be admitted because
// the store is at capacity and every retained job is still queued or
// running (terminal jobs are evicted oldest-first to make room).
var ErrStoreFull = errors.New("server: job store full")

// JobStore is the job registry abstraction every lifecycle transition
// routes through. The in-memory implementation (memStore) is the
// default; walStore (persist.go) layers a write-ahead log underneath
// so jobs, specs, state transitions and checkpoints survive a restart.
type JobStore interface {
	// Add assigns j its ID and registers it, evicting the oldest
	// terminal jobs if the store is full; the evicted jobs are
	// returned so the caller can release their side state. Fails with
	// ErrStoreFull when nothing is evictable.
	Add(j *Job) ([]*Job, error)
	// Remove unregisters a job (used to roll back an admission whose
	// queue hand-off failed).
	Remove(id string)
	// Get looks a job up by ID.
	Get(id string) (*Job, bool)
	// List returns the retained jobs in insertion order.
	List() []*Job
	// Len reports the number of retained jobs.
	Len() int
	// Bind attaches the store's durability hooks to an admitted job:
	// the lifecycle-transition log, the oracle tape sink and the
	// checkpoint sink. The in-memory store has none.
	Bind(j *Job)
	// Persistent reports whether the store survives a restart.
	Persistent() bool
	// Close releases store resources (flushes and closes the WAL for
	// persistent stores). The server calls it once, after the worker
	// pool drains.
	Close() error
}

// WorkQueue is the pull queue between admission and the worker pool.
// Enqueue never blocks (admission returns 429 on a full queue); Take
// blocks until a job is available or the queue closes.
type WorkQueue interface {
	// Enqueue admits j for execution; false when the queue is full or
	// closed.
	Enqueue(j *Job) bool
	// Take blocks for the next job; ok=false when the queue is closed
	// and drained.
	Take() (j *Job, ok bool)
	// Close ends intake; Take drains the backlog then reports false.
	Close()
}

// memStore is the in-memory job registry: bounded, insertion-ordered,
// eviction-safe. Eviction only ever removes terminal jobs — a queued
// or running job is never dropped, so the bound degrades history
// retention, not correctness.
type memStore struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []*Job // insertion order (oldest first)
	cap   int
	seq   int64
}

func newMemStore(capacity int) *memStore {
	return &memStore{jobs: make(map[string]*Job, capacity), cap: capacity}
}

// Add implements JobStore.
func (s *memStore) Add(j *Job) ([]*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var evicted []*Job
	for len(s.order) >= s.cap {
		e := s.evictLocked()
		if e == nil {
			return nil, ErrStoreFull
		}
		evicted = append(evicted, e)
	}
	s.seq++
	j.ID = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	return evicted, nil
}

// adopt registers a recovered job under its existing ID (WAL replay
// path), bumping seq so fresh admissions never collide with history.
func (s *memStore) adopt(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) >= s.cap && s.evictLocked() == nil {
		return ErrStoreFull
	}
	if n, ok := idSeq(j.ID); ok && n > s.seq {
		s.seq = n
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	return nil
}

// bumpSeq raises the ID sequence floor (WAL recovery: evicted history
// must not have its IDs reissued while spill files may linger).
func (s *memStore) bumpSeq(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.seq {
		s.seq = n
	}
}

// idSeq parses the numeric part of a "j%06d" job ID.
func idSeq(id string) (int64, bool) {
	var n int64
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// evictLocked drops and returns the oldest terminal job; nil when
// every job is still live.
func (s *memStore) evictLocked() *Job {
	for i, j := range s.order {
		if j.State().Terminal() {
			delete(s.jobs, j.ID)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return j
		}
	}
	return nil
}

// Remove implements JobStore.
func (s *memStore) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Get implements JobStore.
func (s *memStore) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List implements JobStore.
func (s *memStore) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Len implements JobStore.
func (s *memStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Bind implements JobStore: the in-memory store records nothing.
func (s *memStore) Bind(j *Job) {}

// Persistent implements JobStore.
func (s *memStore) Persistent() bool { return false }

// Close implements JobStore.
func (s *memStore) Close() error { return nil }

// memQueue is the in-memory pull queue: a bounded channel guarded by a
// closed flag so a late Enqueue racing Shutdown reports false instead
// of panicking on a closed channel.
type memQueue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newMemQueue(depth int) *memQueue {
	return &memQueue{ch: make(chan *Job, depth)}
}

// Enqueue implements WorkQueue.
func (q *memQueue) Enqueue(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// Take implements WorkQueue.
func (q *memQueue) Take() (*Job, bool) {
	j, ok := <-q.ch
	return j, ok
}

// Close implements WorkQueue. Idempotent.
func (q *memQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ch)
}

// sinks bundles the durability hooks a JobStore binds onto a job; the
// zero value (in-memory path) disables them all.
type sinks struct {
	// transition logs a lifecycle transition after the job's own state
	// has settled (invoked outside j.mu).
	transition func(j *Job, st State)
	// tape receives every live oracle interaction (oracle journal
	// sink); ckpt receives engine checkpoints and doubles as the
	// durability barrier.
	tape func(statsat.TapeRecord)
	ckpt func(statsat.Checkpoint)
}
