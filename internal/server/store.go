package server

import (
	"errors"
	"fmt"
	"sync"
)

// ErrStoreFull is returned when a new job cannot be admitted because
// the store is at capacity and every retained job is still queued or
// running (terminal jobs are evicted oldest-first to make room).
var ErrStoreFull = errors.New("server: job store full")

// store is the in-memory job registry: bounded, insertion-ordered,
// eviction-safe. Eviction only ever removes terminal jobs — a queued
// or running job is never dropped, so the bound degrades history
// retention, not correctness.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []*Job // insertion order (oldest first)
	cap   int
	seq   int64
}

func newStore(capacity int) *store {
	return &store{jobs: make(map[string]*Job, capacity), cap: capacity}
}

// add assigns the job its ID and registers it, evicting the oldest
// terminal job if the store is full. Fails with ErrStoreFull when
// nothing is evictable.
func (s *store) add(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) >= s.cap && !s.evictLocked() {
		return ErrStoreFull
	}
	s.seq++
	j.ID = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	return nil
}

// evictLocked drops the oldest terminal job; false when every job is
// still live.
func (s *store) evictLocked() bool {
	for i, j := range s.order {
		if j.State().Terminal() {
			delete(s.jobs, j.ID)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

// remove unregisters a job (used to roll back an admission whose
// queue hand-off failed).
func (s *store) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// get looks a job up by ID.
func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns the retained jobs in insertion order.
func (s *store) list() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// len reports the number of retained jobs.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
