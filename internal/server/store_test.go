package server

import (
	"errors"
	"testing"
)

// bareJob builds a store-insertable job in the given state without the
// full admission machinery.
func bareJob(state State) *Job {
	return &Job{state: state, done: make(chan struct{})}
}

func TestStoreAddAssignsSequentialIDs(t *testing.T) {
	s := newStore(4)
	a, b := bareJob(StateQueued), bareJob(StateQueued)
	if err := s.add(a); err != nil {
		t.Fatal(err)
	}
	if err := s.add(b); err != nil {
		t.Fatal(err)
	}
	if a.ID != "j000001" || b.ID != "j000002" {
		t.Fatalf("IDs = %q, %q", a.ID, b.ID)
	}
	if got, ok := s.get("j000002"); !ok || got != b {
		t.Fatal("get by ID failed")
	}
	if s.len() != 2 {
		t.Fatalf("len = %d", s.len())
	}
}

func TestStoreEvictsOldestTerminal(t *testing.T) {
	s := newStore(2)
	oldDone := bareJob(StateDone)
	live := bareJob(StateRunning)
	if err := s.add(oldDone); err != nil {
		t.Fatal(err)
	}
	if err := s.add(live); err != nil {
		t.Fatal(err)
	}
	next := bareJob(StateQueued)
	if err := s.add(next); err != nil {
		t.Fatalf("add with evictable job: %v", err)
	}
	if _, ok := s.get(oldDone.ID); ok {
		t.Error("terminal job not evicted")
	}
	if _, ok := s.get(live.ID); !ok {
		t.Error("live job evicted")
	}
	order := s.list()
	if len(order) != 2 || order[0] != live || order[1] != next {
		t.Fatalf("order after eviction = %v", order)
	}
}

func TestStoreFullWhenAllLive(t *testing.T) {
	s := newStore(2)
	if err := s.add(bareJob(StateRunning)); err != nil {
		t.Fatal(err)
	}
	if err := s.add(bareJob(StateQueued)); err != nil {
		t.Fatal(err)
	}
	err := s.add(bareJob(StateQueued))
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
}

func TestStoreRemove(t *testing.T) {
	s := newStore(4)
	j := bareJob(StateQueued)
	if err := s.add(j); err != nil {
		t.Fatal(err)
	}
	s.remove(j.ID)
	if _, ok := s.get(j.ID); ok {
		t.Error("job still present after remove")
	}
	if s.len() != 0 {
		t.Fatalf("len = %d after remove", s.len())
	}
	s.remove("j999999") // unknown ID is a no-op
}
