package server

import (
	"errors"
	"testing"
)

// bareJob builds a store-insertable job in the given state without the
// full admission machinery.
func bareJob(state State) *Job {
	return &Job{state: state, done: make(chan struct{})}
}

func TestStoreAddAssignsSequentialIDs(t *testing.T) {
	s := newMemStore(4)
	a, b := bareJob(StateQueued), bareJob(StateQueued)
	if _, err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.ID != "j000001" || b.ID != "j000002" {
		t.Fatalf("IDs = %q, %q", a.ID, b.ID)
	}
	if got, ok := s.Get("j000002"); !ok || got != b {
		t.Fatal("get by ID failed")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreEvictsOldestTerminal(t *testing.T) {
	s := newMemStore(2)
	oldDone := bareJob(StateDone)
	live := bareJob(StateRunning)
	if _, err := s.Add(oldDone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(live); err != nil {
		t.Fatal(err)
	}
	next := bareJob(StateQueued)
	evicted, err := s.Add(next)
	if err != nil {
		t.Fatalf("add with evictable job: %v", err)
	}
	if len(evicted) != 1 || evicted[0] != oldDone {
		t.Fatalf("evicted = %v, want the terminal job", evicted)
	}
	if _, ok := s.Get(oldDone.ID); ok {
		t.Error("terminal job not evicted")
	}
	if _, ok := s.Get(live.ID); !ok {
		t.Error("live job evicted")
	}
	order := s.List()
	if len(order) != 2 || order[0] != live || order[1] != next {
		t.Fatalf("order after eviction = %v", order)
	}
}

func TestStoreFullWhenAllLive(t *testing.T) {
	s := newMemStore(2)
	if _, err := s.Add(bareJob(StateRunning)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(bareJob(StateQueued)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Add(bareJob(StateQueued))
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
}

func TestStoreRemove(t *testing.T) {
	s := newMemStore(4)
	j := bareJob(StateQueued)
	if _, err := s.Add(j); err != nil {
		t.Fatal(err)
	}
	s.Remove(j.ID)
	if _, ok := s.Get(j.ID); ok {
		t.Error("job still present after remove")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after remove", s.Len())
	}
	s.Remove("j999999") // unknown ID is a no-op
}

func TestStoreAdoptPreservesIDAndSeq(t *testing.T) {
	s := newMemStore(4)
	rec := bareJob(StateDone)
	rec.ID = "j000007"
	if err := s.adopt(rec); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("j000007"); !ok || got != rec {
		t.Fatal("adopted job not retrievable under its recovered ID")
	}
	fresh := bareJob(StateQueued)
	if _, err := s.Add(fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "j000008" {
		t.Fatalf("fresh ID after adopt = %q, want j000008", fresh.ID)
	}
}

func TestMemQueueEnqueueAfterCloseRefused(t *testing.T) {
	q := newMemQueue(2)
	a := bareJob(StateQueued)
	if !q.Enqueue(a) {
		t.Fatal("enqueue on open queue refused")
	}
	q.Close()
	if q.Enqueue(bareJob(StateQueued)) {
		t.Fatal("enqueue on closed queue accepted")
	}
	// The backlog still drains after Close...
	if j, ok := q.Take(); !ok || j != a {
		t.Fatalf("Take after close = %v, %v", j, ok)
	}
	// ...and then Take reports closure.
	if _, ok := q.Take(); ok {
		t.Fatal("Take on drained closed queue reported ok")
	}
	q.Close() // idempotent
}
