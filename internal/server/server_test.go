package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"statsat"
	"statsat/internal/trace"
)

// testServer wires a started Server into an httptest frontend and
// registers teardown that drains both.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	hts := httptest.NewServer(srv)
	t.Cleanup(func() {
		hts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		cancel()
	})
	return srv, hts
}

// submit POSTs a spec and returns the assigned job ID.
func submit(t *testing.T, base string, sp Spec) string {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var reply submitReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.ID == "" {
		t.Fatal("submit: empty job ID")
	}
	return reply.ID
}

// getStatus GETs and decodes a job status.
func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job settles (white-box via the store so
// tests don't sleep-loop over HTTP).
func waitTerminal(t *testing.T, srv *Server, id string) *Job {
	t.Helper()
	j, ok := srv.store.Get(id)
	if !ok {
		t.Fatalf("job %s not in store", id)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not settle", id)
	}
	return j
}

// slowSpec is a job that cannot finish quickly: an Anti-SAT locked
// benchmark forces ~2^(k-1) distinguishing iterations, so a 14-bit lock
// keeps the attack busy far longer than any test step while each
// individual iteration stays fast.
func slowSpec() Spec {
	return Spec{
		Attack:    "statsat",
		Benchmark: "c880",
		Scale:     8,
		Lock:      "antisat",
		KeyBits:   14,
		Options:   SpecOptions{Ns: 20, MaxIter: 1 << 20},
	}
}

// quickSpec is a job that finishes in milliseconds.
func quickSpec(attack string) Spec {
	return Spec{
		Attack:    attack,
		Benchmark: "c17",
		Lock:      "rll",
		KeyBits:   4,
		Options:   SpecOptions{Ns: 10, NSatis: 5, NEval: 20, MaxIter: 500},
	}
}

// TestEndToEndCancelMidSolve is the acceptance-criteria flow: submit a
// job against a locked c880 oracle, observe at least one
// iteration_start event on the live NDJSON stream, cancel mid-solve,
// and receive a partial result whose error is ErrInterrupted.
func TestEndToEndCancelMidSolve(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, MaxJobs: 8})
	id := submit(t, hts.URL, slowSpec())

	// Follow the NDJSON stream until the first iteration_start.
	resp, err := http.Get(hts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	sawIterStart := false
	for !sawIterStart {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream ended before iteration_start: %v", err)
		}
		if ev.Type == trace.IterStart {
			sawIterStart = true
		}
	}

	// Cancel mid-solve; DELETE waits for the job to settle and returns
	// the partial result.
	req, err := http.NewRequest(http.MethodDelete, hts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", st.State)
	}
	if st.Outcome == nil || !st.Outcome.Interrupted {
		t.Fatalf("outcome after DELETE = %+v, want interrupted partial", st.Outcome)
	}
	if st.Error == "" {
		t.Error("cancelled status has no error text")
	}

	// The Go error satisfies the facade's sentinel (white-box: HTTP
	// can't carry error identity).
	j := waitTerminal(t, srv, id)
	if err := j.Err(); !errors.Is(err, statsat.ErrInterrupted) {
		t.Fatalf("job error = %v, want ErrInterrupted", err)
	}

	// The stream flushed the interrupted event and then closed.
	sawInterrupted := false
	for {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			break // EOF: stream closed by job settlement
		}
		if ev.Type == trace.Interrupted {
			sawInterrupted = true
		}
	}
	if !sawInterrupted {
		t.Error("interrupted event not observed on the trace stream")
	}
}

// TestParallelBurst is the second acceptance criterion: an 8-job burst
// under -race with zero goroutine leaks after Shutdown.
func TestParallelBurst(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := New(Config{Workers: 4, MaxJobs: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	hts := httptest.NewServer(srv)

	var wg sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attack := []string{"statsat", "psat", "sat", "appsat"}[i%4]
			ids[i] = submit(t, hts.URL, quickSpec(attack))
		}(i)
	}
	wg.Wait()

	for _, id := range ids {
		j := waitTerminal(t, srv, id)
		if st := j.State(); st != StateDone {
			t.Errorf("job %s settled as %s (err %v)", id, st, j.Err())
		}
	}

	hts.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()

	// Goroutine count must return to the pre-server baseline (allowing
	// runtime jitter a moment to settle).
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

func TestShutdownInterruptsRunningJobs(t *testing.T) {
	srv, err := New(Config{Workers: 2, MaxJobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	hts := httptest.NewServer(srv)
	defer hts.Close()

	// One running slow job, one stuck behind it in the queue plus a
	// second worker-occupying job: submit three so at least one is
	// still queued at shutdown.
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, hts.URL, slowSpec()))
	}
	// Wait until a job is genuinely running so shutdown exercises the
	// engine interrupt path, not just queue settlement.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no job reached running state")
		}
		running := false
		for _, id := range ids {
			if j, ok := srv.store.Get(id); ok && j.State() == StateRunning {
				running = true
			}
		}
		if running {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		j, _ := srv.store.Get(id)
		if st := j.State(); st != StateCancelled {
			t.Errorf("job %s after shutdown = %s, want cancelled", id, st)
		}
		if !errors.Is(j.Err(), statsat.ErrInterrupted) && j.Err() == nil {
			t.Errorf("job %s error = %v", id, j.Err())
		}
	}

	// Submissions are refused after shutdown.
	body, _ := json.Marshal(quickSpec("sat"))
	resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %s, want 503", resp.Status)
	}
}

func TestJobTimeoutSettlesCancelled(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, MaxJobs: 4})
	sp := slowSpec()
	sp.TimeoutMs = 300
	id := submit(t, hts.URL, sp)
	j := waitTerminal(t, srv, id)
	if st := j.State(); st != StateCancelled {
		t.Fatalf("timed-out job state = %s, want cancelled", st)
	}
	if !errors.Is(j.Err(), statsat.ErrInterrupted) {
		t.Fatalf("timed-out job error = %v, want ErrInterrupted", j.Err())
	}
	out := j.Outcome()
	if out == nil || !out.Interrupted || out.InterruptCause == "" {
		t.Fatalf("timed-out outcome = %+v", out)
	}
}

func TestQuickJobCompletesWithCorrectKey(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 2, MaxJobs: 4})
	id := submit(t, hts.URL, quickSpec("statsat"))
	j := waitTerminal(t, srv, id)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %s (err %v)", st, j.Err())
	}
	st := getStatus(t, hts.URL, id)
	if st.Outcome == nil || len(st.Outcome.Keys) == 0 {
		t.Fatalf("outcome = %+v, want at least one key", st.Outcome)
	}
	correct := false
	for _, k := range st.Outcome.Keys {
		if k.Correct {
			correct = true
		}
	}
	if !correct {
		t.Errorf("no recovered key marked correct: %+v", st.Outcome.Keys)
	}
	if st.Progress == nil || st.Progress.Iterations == 0 {
		t.Errorf("progress = %+v, want non-zero iterations", st.Progress)
	}
	if st.Finished == "" || st.Started == "" || st.Created == "" {
		t.Errorf("timestamps missing: %+v", st)
	}
}

func TestNetlistUploadJob(t *testing.T) {
	src, key := lockedC17Source(t, 3)
	srv, hts := testServer(t, Config{Workers: 1, MaxJobs: 4})
	id := submit(t, hts.URL, Spec{
		Attack: "sat", Netlist: src, Key: key,
		Options: SpecOptions{MaxIter: 500},
	})
	j := waitTerminal(t, srv, id)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %s (err %v)", st, j.Err())
	}
	out := j.Outcome()
	if out == nil || len(out.Keys) != 1 || !out.Keys[0].Correct {
		t.Fatalf("outcome = %+v, want one correct key", out)
	}
}

func TestAPIErrors(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 1, MaxJobs: 4})

	post := func(body string) *http.Response {
		resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = %s, want 400", resp.Status)
	}
	if resp := post(`{"no_such_field": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field = %s, want 400", resp.Status)
	}
	if resp := post(`{"benchmark": "c432"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec = %s, want 400", resp.Status)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	resp := post(`{"benchmark": "c432"}`)
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == "" {
		t.Errorf("error envelope = %+v (%v)", envelope, err)
	}

	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/trace"} {
		r, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s, want 404", path, r.Status)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, hts.URL+"/v1/jobs/j999999", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %s, want 404", r.Status)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 1, MaxJobs: 4, MaxBodyBytes: 64})
	body, _ := json.Marshal(Spec{Benchmark: "c17", Netlist: strings.Repeat("x", 1024)})
	resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body = %s, want 413", resp.Status)
	}
}

func TestHealthzAndList(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, MaxJobs: 4})

	resp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string `json:"status"`
		Accepting bool   `json:"accepting"`
		Workers   int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || !health.Accepting || health.Workers != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	id1 := submit(t, hts.URL, quickSpec("sat"))
	id2 := submit(t, hts.URL, quickSpec("psat"))
	waitTerminal(t, srv, id1)
	waitTerminal(t, srv, id2)

	lresp, err := http.Get(hts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Jobs) != 2 || list.Jobs[0].ID != id1 || list.Jobs[1].ID != id2 {
		t.Fatalf("list = %+v", list.Jobs)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, MaxJobs: 8})
	// Occupy the single worker, then queue a second job.
	blocker := submit(t, hts.URL, slowSpec())
	queued := submit(t, hts.URL, slowSpec())

	req, _ := http.NewRequest(http.MethodDelete, hts.URL+"/v1/jobs/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("queued job after DELETE = %s, want cancelled", st.State)
	}
	if st.Outcome != nil {
		t.Errorf("queued job has an outcome: %+v", st.Outcome)
	}
	j, _ := srv.store.Get(queued)
	if !errors.Is(j.Err(), statsat.ErrInterrupted) {
		// A queued cancellation never entered the engine; its error is
		// the raw cause, which need not match ErrInterrupted. Verify it
		// is at least non-nil.
		if j.Err() == nil {
			t.Error("cancelled queued job has nil error")
		}
	}

	// Unblock the worker for teardown.
	breq, _ := http.NewRequest(http.MethodDelete, hts.URL+"/v1/jobs/"+blocker, nil)
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
}

func TestStoreEvictionOverHTTP(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 2, MaxJobs: 2})
	a := submit(t, hts.URL, quickSpec("sat"))
	waitTerminal(t, srv, a)
	b := submit(t, hts.URL, quickSpec("sat"))
	waitTerminal(t, srv, b)
	c := submit(t, hts.URL, quickSpec("sat"))
	waitTerminal(t, srv, c)

	resp, err := http.Get(hts.URL + "/v1/jobs/" + a)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job GET = %s, want 404", resp.Status)
	}
}

// TestTraceStreamReplaysForLateSubscriber verifies a subscriber that
// attaches after completion still receives the buffered trace.
func TestTraceStreamReplaysForLateSubscriber(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, MaxJobs: 4})
	id := submit(t, hts.URL, quickSpec("statsat"))
	waitTerminal(t, srv, id)

	resp, err := http.Get(hts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var types []trace.EventType
	for {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			break
		}
		types = append(types, ev.Type)
	}
	if len(types) == 0 {
		t.Fatal("no replayed events")
	}
	if types[0] != trace.AttackStart {
		t.Errorf("first replayed event = %s, want attack_start", types[0])
	}
	saw := map[trace.EventType]bool{}
	for _, ty := range types {
		saw[ty] = true
	}
	for _, want := range []trace.EventType{trace.IterStart, trace.AttackEnd} {
		if !saw[want] {
			t.Errorf("replay missing %s (got %v)", want, types)
		}
	}
}
