package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"statsat/internal/trace"
)

// persistServer starts a Server with the durable fabric rooted at dir.
func persistServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	hts := httptest.NewServer(srv)
	t.Cleanup(func() {
		hts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		cancel()
	})
	return srv, hts
}

// copyTree byte-copies src into dst. Copying while the WAL writer is
// mid-append is deliberate: the copy is exactly the on-disk image a
// crash would leave, torn tail included.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatalf("copying crash image: %v", err)
	}
}

// resumableSpec is an antisat-locked c880 job: the lock forces a
// distinguishing iteration per wrong key pattern (~2^(k/2) of them),
// so the run has plenty of Step boundaries to crash at while still
// completing in test time.
func resumableSpec(attack string, eps float64) Spec {
	return Spec{
		Attack:    attack,
		Benchmark: "c880",
		Scale:     8,
		Lock:      "antisat",
		KeyBits:   10,
		Seed:      5,
		Eps:       eps,
		Options:   SpecOptions{Ns: 20, MaxIter: 1 << 20},
	}
}

// stripVolatile clears the fields of an outcome that legitimately vary
// across runs (wall time); everything else must be byte-identical
// between an uninterrupted run and a crash-resumed one.
func stripVolatile(out *Outcome) *Outcome {
	if out == nil {
		return nil
	}
	c := *out
	c.AttackNs = 0
	return &c
}

// TestRestartDeterminism is the acceptance-criteria flow for the
// durable fabric: run a job under persistence, capture a crash image
// of the data directory at a mid-run Step boundary (the third durable
// checkpoint, via the test-only checkpoint hook), let the original run
// to completion as the control, then boot a second server on the crash
// image and verify the resumed job's outcome — keys, iteration counts,
// oracle-query counts — is identical to the uninterrupted run's.
func TestRestartDeterminism(t *testing.T) {
	cases := []struct {
		attack string
		eps    float64
	}{
		{"sat", 0},
		{"psat", 0},
		{"appsat", 0},
		{"statsat", 0.01}, // noisy: resume must also restore the noise stream position
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.attack, func(t *testing.T) {
			t.Parallel()
			dirA, dirB := t.TempDir(), t.TempDir()
			var snapped bool
			cfg := Config{Workers: 1, MaxJobs: 8}
			// Snapshot the data directory inside the third checkpoint
			// sink call: the engine is blocked at the Step boundary, so
			// the image is exactly "crashed after iteration 3 became
			// durable" — deterministic, no polling race.
			cfg.ckptHook = func(jobID string, n int) {
				if n == 3 && !snapped {
					snapped = true
					copyTree(t, dirA, dirB)
				}
			}
			srv, hts := persistServer(t, dirA, cfg)
			id := submit(t, hts.URL, resumableSpec(tc.attack, tc.eps))

			// Control: the original life runs uninterrupted (the snapshot
			// is taken synchronously along the way).
			control := waitTerminal(t, srv, id)
			if st := control.State(); st != StateDone {
				t.Fatalf("control settled as %s (err %v)", st, control.Err())
			}
			if !snapped {
				t.Fatal("control finished in under three checkpoints; no crash image taken")
			}
			img, err := os.ReadFile(filepath.Join(dirB, "jobs.wal"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(img, []byte(`"t":"ckpt"`)) {
				t.Fatal("crash image holds no checkpoint record")
			}
			for _, terminal := range []string{`"state":"done"`, `"state":"failed"`, `"state":"cancelled"`} {
				if bytes.Contains(img, []byte(terminal)) {
					t.Fatalf("crash image already holds %s: job finished before the snapshot", terminal)
				}
			}

			// Crash recovery: a fresh server on the image must resume the
			// job (listed non-terminal, re-enqueued, tape replayed) and
			// reach the exact same outcome.
			srv2, _ := persistServer(t, dirB, Config{Workers: 1, MaxJobs: 8})
			resumed, ok := srv2.store.Get(id)
			if !ok {
				t.Fatalf("job %s not recovered from the crash image", id)
			}
			if len(resumed.tape) == 0 {
				t.Error("recovered job carries no oracle tape")
			}
			select {
			case <-resumed.Done():
			case <-time.After(120 * time.Second):
				t.Fatalf("resumed job did not settle (state %s)", resumed.State())
			}
			if st := resumed.State(); st != StateDone {
				t.Fatalf("resumed job settled as %s (err %v)", st, resumed.Err())
			}

			want, got := stripVolatile(control.Outcome()), stripVolatile(resumed.Outcome())
			wb, _ := json.Marshal(want)
			gb, _ := json.Marshal(got)
			if !bytes.Equal(wb, gb) {
				t.Fatalf("resumed outcome diverged from control:\ncontrol: %s\nresumed: %s", wb, gb)
			}
			if len(got.Keys) == 0 {
				t.Fatal("no key recovered")
			}
			if tc.attack != "psat" && !got.Keys[0].Correct {
				t.Errorf("resumed key not marked correct: %+v", got.Keys[0])
			}
		})
	}
}

// TestRecoveryListsTerminalJobs verifies the quieter half of recovery:
// finished jobs come back listed with their outcome, the health
// endpoint reports the persistent census, and the trace endpoint
// serves the durable spill for a job whose in-memory ring died with
// the previous process.
func TestRecoveryListsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	srv, hts := persistServer(t, dir, Config{Workers: 2, MaxJobs: 8})
	id := submit(t, hts.URL, quickSpec("statsat"))
	j := waitTerminal(t, srv, id)
	if st := j.State(); st != StateDone {
		t.Fatalf("job settled as %s (err %v)", st, j.Err())
	}
	firstOutcome := j.Outcome()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	hts.Close()

	srv2, hts2 := persistServer(t, dir, Config{Workers: 2, MaxJobs: 8})
	st := getStatus(t, hts2.URL, id)
	if st.State != StateDone {
		t.Fatalf("recovered job state = %s, want done", st.State)
	}
	if st.Outcome == nil || len(st.Outcome.Keys) == 0 {
		t.Fatalf("recovered outcome = %+v", st.Outcome)
	}
	wb, _ := json.Marshal(stripVolatile(firstOutcome))
	gb, _ := json.Marshal(stripVolatile(st.Outcome))
	if !bytes.Equal(wb, gb) {
		t.Fatalf("recovered outcome changed:\nbefore: %s\nafter:  %s", wb, gb)
	}
	if srv2.store.Len() != 1 {
		t.Fatalf("recovered store len = %d", srv2.store.Len())
	}

	// Health census over the recovered fabric.
	resp, err := http.Get(hts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Jobs        int            `json:"jobs"`
		States      map[string]int `json:"states"`
		Persistence bool           `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.Persistence || health.Jobs != 1 || health.States["done"] != 1 || health.States["running"] != 0 {
		t.Fatalf("healthz after recovery = %+v", health)
	}

	// The trace spill outlives the process that buffered the ring.
	tresp, err := http.Get(hts2.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if ct := tresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	dec := json.NewDecoder(tresp.Body)
	saw := map[trace.EventType]bool{}
	for {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			if err != io.EOF {
				t.Fatalf("decoding spilled trace: %v", err)
			}
			break
		}
		saw[ev.Type] = true
	}
	for _, want := range []trace.EventType{trace.AttackStart, trace.IterStart, trace.AttackEnd} {
		if !saw[want] {
			t.Errorf("spilled trace missing %s", want)
		}
	}
}

// TestTornWALTailRecovers ends a server life with garbage appended to
// the log (a torn final append) and verifies the next life opens it,
// truncates the tail and still lists the settled job.
func TestTornWALTailRecovers(t *testing.T) {
	dir := t.TempDir()
	srv, hts := persistServer(t, dir, Config{Workers: 1, MaxJobs: 4})
	id := submit(t, hts.URL, quickSpec("sat"))
	waitTerminal(t, srv, id)
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	hts.Close()

	walPath := filepath.Join(dir, "jobs.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, hts2 := persistServer(t, dir, Config{Workers: 1, MaxJobs: 4})
	if srv2.store.Len() != 1 {
		t.Fatalf("store len after torn-tail recovery = %d", srv2.store.Len())
	}
	st := getStatus(t, hts2.URL, id)
	if st.State != StateDone || st.Outcome == nil {
		t.Fatalf("job after torn-tail recovery = %+v", st)
	}
}
