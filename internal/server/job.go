package server

import (
	"context"
	"sync"
	"time"

	"statsat"
	"statsat/internal/engine"
	"statsat/internal/trace"
)

// State is a job's lifecycle phase. Transitions are strictly forward:
// queued -> running -> one of the three terminal states, or queued ->
// cancelled when a job is cancelled (or the server drains) before a
// worker picks it up.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"      // attack completed (possibly with zero keys)
	StateCancelled State = "cancelled" // interrupted: result is best-effort partial
	StateFailed    State = "failed"    // spec passed admission but the run errored
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Job is one admitted attack job. The immutable identity fields are
// set at admission; everything behind mu changes as the job moves
// through its lifecycle.
type Job struct {
	// ID is the server-assigned job identifier ("j000001", ...).
	ID string
	// Spec is the admitted request body.
	Spec *Spec

	mat    *materialized
	stream *trace.Stream
	prog   *engine.Progress

	// ctx is the job's run context, derived from the server's base
	// context at admission; cancel interrupts it with a cause; done
	// closes when the job reaches a terminal state.
	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	// sinks are the store's durability hooks (JobStore.Bind); the zero
	// value is the in-memory path. tape is the recorded oracle
	// interaction prefix a recovered job replays before going live
	// (nil for fresh jobs; see docs/SERVER.md "Persistence and
	// recovery").
	sinks sinks
	tape  []statsat.TapeRecord

	mu       sync.Mutex
	state    State
	err      error
	outcome  *Outcome
	created  time.Time
	started  time.Time
	finished time.Time
}

// Outcome is the uniform result summary across the four attack kinds
// (the attack-specific counters are omitempty).
type Outcome struct {
	// Keys lists every recovered key, best first for StatSAT; Correct
	// is exact SAT equivalence against the oracle's ground-truth key.
	Keys []KeyReport `json:"keys,omitempty"`
	// Iterations is the total DIP-iteration count; OracleQueries (and
	// EvalQueries for StatSAT) the chip query spend.
	Iterations    int   `json:"iterations"`
	OracleQueries int64 `json:"oracle_queries"`
	EvalQueries   int64 `json:"eval_queries,omitempty"`
	// AttackNs is the key-finding wall time.
	AttackNs int64 `json:"attack_ns"`
	// StatSAT instance-tree counters.
	Instances     int  `json:"instances,omitempty"`
	Forks         int  `json:"forks,omitempty"`
	ForceProceeds int  `json:"force_proceeds,omitempty"`
	DeadInstances int  `json:"dead_instances,omitempty"`
	Truncated     bool `json:"truncated,omitempty"`
	// Failed marks the baselines' UNSAT-before-key failure mode.
	Failed bool `json:"failed,omitempty"`
	// AppSAT reconciliation summary.
	Rounds    int  `json:"rounds,omitempty"`
	EarlyExit bool `json:"early_exit,omitempty"`
	// Interrupted is set when the run was cancelled or timed out;
	// InterruptCause carries the context cause and the counters above
	// are best-effort partials (docs/ARCHITECTURE.md).
	Interrupted    bool   `json:"interrupted,omitempty"`
	InterruptCause string `json:"interrupt_cause,omitempty"`
}

// KeyReport is one recovered key in an Outcome.
type KeyReport struct {
	Key string `json:"key"`
	// FM and HD are the eq. 7-8 scores (StatSAT only; zero for the
	// baselines and for unscored interrupted keys).
	FM float64 `json:"fm,omitempty"`
	HD float64 `json:"hd,omitempty"`
	// Correct reports exact functional equivalence with the
	// ground-truth key on the locked netlist.
	Correct bool `json:"correct"`
	// Iterations is the producing instance's iteration count.
	Iterations int `json:"iterations,omitempty"`
	// Instance is the producing StatSAT instance's ID.
	Instance int `json:"instance,omitempty"`
}

// Status is the wire form of a job's current state (GET /v1/jobs/{id}
// and the per-entry shape of GET /v1/jobs).
type Status struct {
	ID      string      `json:"id"`
	State   State       `json:"state"`
	Attack  string      `json:"attack"`
	Circuit CircuitInfo `json:"circuit"`
	// Created/Started/Finished are RFC3339Nano server timestamps
	// (Started/Finished empty until reached).
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Progress is the live counter snapshot aggregated from the job's
	// trace stream (engine.Progress); present once the job starts.
	Progress *engine.ProgressSnapshot `json:"progress,omitempty"`
	// TraceBuffered and TraceDropped describe the replay ring backing
	// GET /v1/jobs/{id}/trace.
	TraceBuffered int   `json:"trace_buffered"`
	TraceDropped  int64 `json:"trace_dropped,omitempty"`
	// Outcome is set in terminal states (partial when Interrupted).
	Outcome *Outcome `json:"outcome,omitempty"`
	// Error is the run error text ("" when none). For cancelled jobs
	// it matches the engine's InterruptedError rendering.
	Error string `json:"error,omitempty"`
}

// newJob wraps an admitted spec. The clock read is sanctioned here:
// job timestamps are presentation metadata, never experiment output
// (see the walltime note in docs/LINTING.md).
func newJob(sp *Spec, mat *materialized, traceBuf int) *Job {
	return &Job{
		Spec:    sp,
		mat:     mat,
		stream:  trace.NewStream(traceBuf),
		prog:    &engine.Progress{},
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
}

// Status assembles the wire view of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:            j.ID,
		State:         j.state,
		Attack:        j.mat.attack,
		Circuit:       j.mat.circuit,
		Created:       j.created.Format(time.RFC3339Nano),
		TraceBuffered: j.stream.Len(),
		TraceDropped:  j.stream.Dropped(),
		Outcome:       j.outcome,
	}
	if !j.started.IsZero() {
		st.Started = j.started.Format(time.RFC3339Nano)
		snap := j.prog.Snapshot()
		st.Progress = &snap
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Format(time.RFC3339Nano)
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's run error (nil while queued/running or on
// clean completion). For interrupted jobs it matches
// statsat.ErrInterrupted via errors.Is.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Outcome returns the result summary (nil until terminal; partial for
// cancelled jobs).
func (j *Job) Outcome() *Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// Done exposes the terminal-state barrier: closed exactly once, when
// the job finishes, fails or is cancelled.
func (j *Job) Done() <-chan struct{} { return j.done }

// tryStart transitions queued -> running; a false return means the job
// was cancelled while waiting in the queue and must not run. The
// store's transition hook fires after j.mu is released — it may block
// on the write-ahead log.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	if j.sinks.transition != nil {
		j.sinks.transition(j, StateRunning)
	}
	return true
}

// finish moves the job to a terminal state, closes its trace stream
// (ending every live subscriber) and releases Done waiters. Repeat
// calls are ignored so a cancellation racing completion settles on
// whichever came first.
func (j *Job) finish(state State, out *Outcome, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.outcome = out
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	// The terminal record reaches the store (and, on the persistent
	// path, stable storage) before Done waiters release: a client that
	// observed settlement can rely on the outcome surviving a crash.
	if j.sinks.transition != nil {
		j.sinks.transition(j, state)
	}
	j.stream.Close()
	close(j.done)
}

// Cancel interrupts the job with the given cause. Queued jobs settle
// immediately; running jobs stop at the engine's next interrupt check
// and publish their best-effort partial outcome. Safe to call in any
// state, any number of times.
func (j *Job) Cancel(cause error) {
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		// Never ran: no outcome to salvage. finish ignores the call if
		// a worker won the race and the run's own termination path is
		// already the one that counts.
		j.finish(StateCancelled, nil, cause)
	}
	if j.cancel != nil {
		j.cancel(cause)
	}
}

// tracer is the sink chain a job's attack emits into: the replayable
// live stream plus the progress aggregate.
func (j *Job) tracer() statsat.Tracer {
	return statsat.MultiTracer(j.stream, j.prog)
}
