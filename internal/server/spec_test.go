package server

import (
	"errors"
	"strings"
	"testing"

	"statsat"
	"statsat/internal/netio"
)

// lockedC17Source locks C17 with RLL and renders it to bench text, the
// shape a client uploads in netlist mode. Returns the source and the
// correct key string.
func lockedC17Source(t *testing.T, keyBits int) (string, string) {
	t.Helper()
	lk, err := statsat.LockRLL(statsat.C17(), keyBits, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := netio.Write(&sb, lk.Circuit, netio.Bench); err != nil {
		t.Fatal(err)
	}
	key := make([]byte, len(lk.Key))
	for i, v := range lk.Key {
		if v {
			key[i] = '1'
		} else {
			key[i] = '0'
		}
	}
	return sb.String(), string(key)
}

func TestSpecMaterializeBenchmark(t *testing.T) {
	sp := Spec{Benchmark: "c17", Lock: "rll", KeyBits: 4}
	mat, err := sp.materialize()
	if err != nil {
		t.Fatal(err)
	}
	if mat.attack != "statsat" {
		t.Errorf("default attack = %q", mat.attack)
	}
	if mat.circuit.Keys != 4 {
		t.Errorf("key inputs = %d, want 4", mat.circuit.Keys)
	}
	if len(mat.key) != 4 || mat.orc == nil || mat.locked == nil {
		t.Errorf("materialized = %+v", mat)
	}
}

func TestSpecMaterializeNetlist(t *testing.T) {
	src, key := lockedC17Source(t, 3)
	sp := Spec{Attack: "psat", Netlist: src, Key: key}
	mat, err := sp.materialize()
	if err != nil {
		t.Fatal(err)
	}
	if mat.attack != "psat" || mat.circuit.Keys != 3 {
		t.Errorf("materialized = %+v", mat.circuit)
	}
}

func TestSpecMaterializeNoisyOracle(t *testing.T) {
	sp := Spec{Benchmark: "c17", KeyBits: 2, Eps: 0.01, Seed: 3}
	if _, err := sp.materialize(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecMaterializeRejects(t *testing.T) {
	src, key := lockedC17Source(t, 3)
	cases := []struct {
		name string
		sp   Spec
	}{
		{"unknown attack", Spec{Attack: "quantum", Benchmark: "c17"}},
		{"no source", Spec{}},
		{"both sources", Spec{Benchmark: "c17", Netlist: src, Key: key}},
		{"bad eps", Spec{Benchmark: "c17", Eps: 1.5}},
		{"unknown benchmark", Spec{Benchmark: "c432"}},
		{"bad scale", Spec{Benchmark: "c880", Scale: -1}},
		{"bad key bits", Spec{Benchmark: "c17", KeyBits: 65}},
		{"unknown lock", Spec{Benchmark: "c17", Lock: "xor"}},
		{"benchmark with key", Spec{Benchmark: "c17", Key: "101"}},
		{"netlist with lock", Spec{Netlist: src, Key: key, Lock: "rll"}},
		{"netlist missing key", Spec{Netlist: src}},
		{"netlist key width", Spec{Netlist: src, Key: "1"}},
		{"netlist key alphabet", Spec{Netlist: src, Key: "1x0"}},
		{"netlist garbage", Spec{Netlist: "not a netlist", Key: "1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sp.materialize()
			if err == nil {
				t.Fatal("materialize accepted an invalid spec")
			}
			if !errors.Is(err, errSpec) {
				t.Fatalf("err = %v, not wrapped in errSpec", err)
			}
		})
	}
}

func TestSpecNetlistWithoutKeyInputs(t *testing.T) {
	var sb strings.Builder
	if err := netio.Write(&sb, statsat.C17(), netio.Bench); err != nil {
		t.Fatal(err)
	}
	sp := Spec{Netlist: sb.String(), Key: "1"}
	if _, err := sp.materialize(); err == nil {
		t.Fatal("accepted a netlist with no key inputs")
	}
}

func TestSpecAllLocksMaterialize(t *testing.T) {
	for _, lock := range []string{"rll", "sll", "sfll", "antisat", "sarlock"} {
		sp := Spec{Benchmark: "c880", Scale: 16, Lock: lock, KeyBits: 4}
		if _, err := sp.materialize(); err != nil {
			t.Errorf("lock %s: %v", lock, err)
		}
	}
}
