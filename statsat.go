// Package statsat is the public API of the StatSAT reproduction — a
// Boolean-Satisfiability attack on logic-locked probabilistic circuits
// (Mondal, Zuzak, Srivastava, DAC 2020).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - gate-level circuits and .bench I/O (Circuit, ParseBench, ...),
//   - benchmark generation (C17, Benchmarks, RandomCircuit),
//   - logic locking (LockRLL, LockSLL, LockSFLLHD),
//   - activated-chip oracles (NewOracle, NewNoisyOracle),
//   - the StatSAT attack (Attack, Options, Result) plus the standard
//     SAT attack and the PSAT baseline,
//   - evaluation metrics (FM, HD, KeysEquivalent, MeasureBER) and the
//     §V-E gate-error estimator (EstimateGateError),
//   - attack observability (Tracer, NewJSONLTracer, TraceRecorder):
//     structured, timestamped events from inside the attack loop.
//
// Quickstart:
//
//	orig := statsat.C17()
//	locked, _ := statsat.LockRLL(orig, 4, 1)
//	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, 0.01, 7)
//	res, _ := statsat.Attack(locked.Circuit, orc, statsat.Options{EpsG: 0.01, NInst: 4})
//	fmt.Println(res.Best.Key, res.Best.HD)
//
// # Tracing
//
// Every attack engine (Attack, StandardSATOpt, PSAT) accepts a Tracer
// that receives a typed event for each milestone of the run: iteration
// start/end with SAT-solver counters, distinguishing-input discovery,
// output bits gated by the U_lambda/E_lambda thresholds, instance
// forks and force-proceeds, key acceptance, and FM/HD scoring. Events
// carry a total-order sequence number and a monotonic timestamp, and
// emission is safe under Options.Parallel. The wire format and the
// exact payload of every event type are documented in
// docs/OBSERVABILITY.md; tracing never changes attack behaviour or
// results.
//
// To record a run as JSON lines:
//
//	f, _ := os.Create("trace.jsonl")
//	defer f.Close()
//	opts := statsat.Options{EpsG: 0.01, NInst: 4, Tracer: statsat.NewJSONLTracer(f)}
//	res, _ := statsat.Attack(locked.Circuit, orc, opts)
//
// To inspect events in memory (e.g. in tests), use NewTraceRecorder;
// to fan one run out to several sinks, use MultiTracer. A runnable
// walk-through lives in examples/tracing.
package statsat

import (
	"context"
	"io"
	"math/rand"

	"statsat/internal/attack"
	"statsat/internal/bench"
	"statsat/internal/circuit"
	"statsat/internal/core"
	"statsat/internal/engine"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
	"statsat/internal/trace"
	"statsat/internal/verilog"
)

// Circuit is a combinational gate-level netlist.
type Circuit = circuit.Circuit

// GateType enumerates supported gate functions.
type GateType = circuit.GateType

// Re-exported gate types for circuit construction.
const (
	Input  = circuit.Input
	Key    = circuit.Key
	Const0 = circuit.Const0
	Const1 = circuit.Const1
	Buf    = circuit.Buf
	Not    = circuit.Not
	And    = circuit.And
	Nand   = circuit.Nand
	Or     = circuit.Or
	Nor    = circuit.Nor
	Xor    = circuit.Xor
	Xnor   = circuit.Xnor
	Mux    = circuit.Mux
)

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit { return circuit.New(name) }

// Simplify returns a functionally equivalent, cleaned-up copy of a
// netlist: constants propagated, identities folded, common
// subexpressions merged, dead gates swept. The I/O interface is
// preserved exactly.
func Simplify(c *Circuit) (*Circuit, error) { return circuit.Simplify(c) }

// ParseBench reads an ISCAS .bench netlist; inputs named "keyinput*"
// become key inputs.
func ParseBench(r io.Reader) (*Circuit, error) { return bench.Parse(r) }

// ParseBenchString is ParseBench over a string.
func ParseBenchString(s string) (*Circuit, error) { return bench.ParseString(s) }

// WriteBench serialises a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// FormatBench renders a circuit as a .bench string.
func FormatBench(c *Circuit) string { return bench.Format(c) }

// ParseVerilog reads a gate-level structural Verilog module (the
// ISCAS/ITC distribution format); "keyinput*" ports become key inputs.
func ParseVerilog(r io.Reader) (*Circuit, error) { return verilog.Parse(r) }

// ParseVerilogString is ParseVerilog over a string.
func ParseVerilogString(s string) (*Circuit, error) { return verilog.ParseString(s) }

// WriteVerilog serialises a circuit as a structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return verilog.Write(w, c) }

// FormatVerilog renders a circuit as a Verilog string.
func FormatVerilog(c *Circuit) string { return verilog.Format(c) }

// C17 returns the real ISCAS85 c17 netlist.
func C17() *Circuit { return gen.C17() }

// Benchmark describes one synthetic stand-in benchmark.
type Benchmark = gen.Benchmark

// Benchmarks lists the paper's Table I suite (plus c880).
func Benchmarks() []Benchmark { return gen.TableI }

// BenchmarkByName looks up a Table I benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return gen.ByName(name) }

// RandomCircuit generates a seeded random combinational circuit.
func RandomCircuit(name string, inputs, gates, outputs int, seed int64) *Circuit {
	return gen.Random(name, inputs, gates, outputs, seed)
}

// Locked bundles a locked netlist with its ground-truth key.
type Locked = lock.Locked

// LockRLL locks a circuit with random XOR/XNOR key gates.
func LockRLL(orig *Circuit, keyBits int, seed int64) (*Locked, error) {
	return lock.RLL(orig, keyBits, rand.New(rand.NewSource(seed)))
}

// LockSLL locks a circuit with Strong Logic Locking (interference-
// maximising key-gate placement).
func LockSLL(orig *Circuit, keyBits int, seed int64) (*Locked, error) {
	return lock.SLL(orig, keyBits, rand.New(rand.NewSource(seed)))
}

// LockSFLLHD locks a circuit with SFLL-HD^h over keyBits protected
// primary inputs.
func LockSFLLHD(orig *Circuit, keyBits, h int, seed int64) (*Locked, error) {
	return lock.SFLLHD(orig, keyBits, h, rand.New(rand.NewSource(seed)))
}

// Oracle is a black-box activated chip.
type Oracle = oracle.Oracle

// NewOracle returns a deterministic (noise-free) activated chip.
func NewOracle(c *Circuit, key []bool) Oracle { return oracle.NewDeterministic(c, key) }

// NewNoisyOracle returns a probabilistic activated chip where every
// logic gate flips its output with probability eps per evaluation.
func NewNoisyOracle(c *Circuit, key []bool, eps float64, seed int64) Oracle {
	return oracle.NewProbabilistic(c, key, eps, seed)
}

// TapeRecord is one recorded oracle interaction on a resume tape (see
// docs/SERVER.md "Persistence and recovery").
type TapeRecord = oracle.TapeRecord

// NewJournalOracle wraps a freshly built oracle with replay-then-record
// semantics: the recorded tape prefix is served back instead of fresh
// silicon queries (reproducing an interrupted trajectory exactly), new
// interactions stream to sink. Either tape or sink may be empty/nil.
func NewJournalOracle(inner Oracle, tape []TapeRecord, sink func(TapeRecord)) Oracle {
	return oracle.NewJournal(inner, tape, sink)
}

// ValidateTape sanity-checks a replayed tape against an oracle's
// pinout before a resume commits to it.
func ValidateTape(tape []TapeRecord, o Oracle) error { return oracle.ValidateTape(tape, o) }

// Checkpoint is the serializable progress marker captured at the
// engine's Step boundary; CheckpointSink receives one after every
// completed iteration (Options.Checkpoint and the baseline options'
// Checkpoint fields). See docs/ARCHITECTURE.md "Checkpoint contract".
type (
	Checkpoint     = engine.Checkpoint
	CheckpointSink = engine.CheckpointSink
)

// SignalProbs queries an oracle ns times and returns per-output
// signal probabilities (eq. 1 of the paper).
func SignalProbs(o Oracle, x []bool, ns int) []float64 {
	return oracle.SignalProbs(context.Background(), o, x, ns)
}

// SignalProbsCtx is SignalProbs with cancellation: a cancelled ctx
// stops the sampling early and the probabilities are normalised over
// the samples actually taken (best-effort).
func SignalProbsCtx(ctx context.Context, o Oracle, x []bool, ns int) []float64 {
	return oracle.SignalProbs(ctx, o, x, ns)
}

// Options configures the StatSAT attack (zero values pick the paper's
// defaults: Ns=500, NSatis=100, NEval=2000, U_lambda=0.25,
// E_lambda=0.30, NInst=1).
type Options = core.Options

// Result reports a StatSAT run: every recovered key scored by FM/HD
// (best first), instance statistics and timing.
type Result = core.Result

// KeyReport is one recovered key with its evaluation scores.
type KeyReport = core.KeyReport

// ErrNoInstances is returned when every SAT instance died without a key.
var ErrNoInstances = core.ErrNoInstances

// ErrInterrupted matches (errors.Is) any attack stopped by context
// cancellation or deadline expiry. Interrupted attacks return it
// alongside a non-nil best-effort result; see docs/ARCHITECTURE.md
// for the cancellation contract.
var ErrInterrupted = core.ErrInterrupted

// Attack runs StatSAT against the oracle.
func Attack(locked *Circuit, orc Oracle, opts Options) (*Result, error) {
	return core.Attack(context.Background(), locked, orc, opts)
}

// AttackCtx is Attack with cancellation: when ctx is cancelled or its
// deadline expires the attack stops at the next iteration boundary
// and returns its best-effort partial result together with an error
// matching ErrInterrupted.
func AttackCtx(ctx context.Context, locked *Circuit, orc Oracle, opts Options) (*Result, error) {
	return core.Attack(ctx, locked, orc, opts)
}

// EstimateOptions configures EstimateGateError.
type EstimateOptions = core.EstimateOptions

// EstimateGateError implements §V-E: the attacker estimates the
// oracle's gate error probability by uncertainty matching.
func EstimateGateError(locked *Circuit, orc Oracle, opts EstimateOptions) float64 {
	return core.EstimateGateError(context.Background(), locked, orc, opts)
}

// EstimateGateErrorCtx is EstimateGateError with cancellation: a
// cancelled ctx stops the grid sweep and returns the best estimate so
// far.
func EstimateGateErrorCtx(ctx context.Context, locked *Circuit, orc Oracle, opts EstimateOptions) float64 {
	return core.EstimateGateError(ctx, locked, orc, opts)
}

// BaselineResult reports a standard-SAT or PSAT run.
type BaselineResult = attack.Result

// PSATOptions configures the PSAT baseline.
type PSATOptions = attack.PSATOptions

// StandardSAT runs the classic SAT attack (deterministic oracles).
func StandardSAT(locked *Circuit, orc Oracle, maxIter int) (*BaselineResult, error) {
	return attack.StandardSAT(context.Background(), locked, orc, maxIter)
}

// StandardSATCtx is StandardSAT with cancellation (see AttackCtx for
// the contract).
func StandardSATCtx(ctx context.Context, locked *Circuit, orc Oracle, maxIter int) (*BaselineResult, error) {
	return attack.StandardSAT(ctx, locked, orc, maxIter)
}

// PSAT runs the probabilistic-SAT baseline of Patnaik et al.
func PSAT(locked *Circuit, orc Oracle, opts PSATOptions) (*BaselineResult, error) {
	return attack.PSAT(context.Background(), locked, orc, opts)
}

// PSATCtx is PSAT with cancellation (see AttackCtx for the contract).
func PSATCtx(ctx context.Context, locked *Circuit, orc Oracle, opts PSATOptions) (*BaselineResult, error) {
	return attack.PSAT(ctx, locked, orc, opts)
}

// SATOptions configures StandardSATOpt.
type SATOptions = attack.SATOptions

// StandardSATOpt is StandardSAT with the full option set (iteration
// bound plus tracing).
func StandardSATOpt(locked *Circuit, orc Oracle, opts SATOptions) (*BaselineResult, error) {
	return attack.StandardSATOpt(context.Background(), locked, orc, opts)
}

// StandardSATOptCtx is StandardSATOpt with cancellation (see AttackCtx
// for the contract).
func StandardSATOptCtx(ctx context.Context, locked *Circuit, orc Oracle, opts SATOptions) (*BaselineResult, error) {
	return attack.StandardSATOpt(ctx, locked, orc, opts)
}

// AppSATOptions configures the AppSAT baseline.
type AppSATOptions = attack.AppSATOptions

// AppSATResult reports an AppSAT run.
type AppSATResult = attack.AppSATResult

// AppSAT runs the approximate SAT attack (Shamsi et al.) — effective
// on deterministic oracles, inapplicable to probabilistic ones (the
// paper's footnote 2).
func AppSAT(locked *Circuit, orc Oracle, opts AppSATOptions) (*AppSATResult, error) {
	return attack.AppSAT(context.Background(), locked, orc, opts)
}

// AppSATCtx is AppSAT with cancellation (see AttackCtx for the
// contract).
func AppSATCtx(ctx context.Context, locked *Circuit, orc Oracle, opts AppSATOptions) (*AppSATResult, error) {
	return attack.AppSAT(ctx, locked, orc, opts)
}

// LockRLLDeep locks a circuit with depth-targeted random key gates —
// the defensive variant explored for the paper's future-work question
// (see internal/exp.Defense).
func LockRLLDeep(orig *Circuit, keyBits int, seed int64) (*Locked, error) {
	return lock.RLLDeep(orig, keyBits, rand.New(rand.NewSource(seed)))
}

// LockAntiSAT locks a circuit with an Anti-SAT block (Xie &
// Srivastava); keyBits must be even.
func LockAntiSAT(orig *Circuit, keyBits int, seed int64) (*Locked, error) {
	return lock.AntiSAT(orig, keyBits, rand.New(rand.NewSource(seed)))
}

// LockSARLock locks a circuit with SARLock (Yasin et al.).
func LockSARLock(orig *Circuit, keyBits int, seed int64) (*Locked, error) {
	return lock.SARLock(orig, keyBits, rand.New(rand.NewSource(seed)))
}

// FM computes the figure of merit (eq. 7) between two signal-
// probability matrices indexed [input][output].
func FM(oracleProbs, keyProbs [][]float64) float64 { return metrics.FM(oracleProbs, keyProbs) }

// HD computes the signal-probability Hamming distance (eq. 8).
func HD(oracleProbs, keyProbs [][]float64) float64 { return metrics.HD(oracleProbs, keyProbs) }

// BERStats reports measured average/maximum output bit error ratios.
type BERStats = metrics.BERStats

// MeasureBER samples a probabilistic chip and reports its output BERs
// relative to the deterministic reference (Table II's BER columns).
func MeasureBER(c *Circuit, key []bool, eps float64, inputs, samples int, seed int64) BERStats {
	return metrics.MeasureBER(c, key, eps, inputs, samples, seed)
}

// KeysEquivalent decides exactly (via SAT) whether two keys induce the
// same function on the locked circuit.
func KeysEquivalent(locked *Circuit, keyA, keyB []bool) (bool, error) {
	return metrics.KeysEquivalent(locked, keyA, keyB)
}

// EquivalentToOriginal decides exactly whether locked+key matches an
// unlocked reference circuit.
func EquivalentToOriginal(locked *Circuit, key []bool, orig *Circuit) (bool, error) {
	return metrics.EquivalentToOriginal(locked, key, orig)
}

// Tracer receives attack trace events (set it via Options.Tracer,
// SATOptions.Tracer or PSATOptions.Tracer). Implementations must
// tolerate concurrent Emit calls. The event schema is documented in
// docs/OBSERVABILITY.md.
type Tracer = trace.Tracer

// TraceEvent is one trace record; TraceEventType discriminates its
// payload.
type (
	TraceEvent     = trace.Event
	TraceEventType = trace.EventType
)

// Trace event types, re-exported from the schema (docs/OBSERVABILITY.md).
const (
	TraceAttackStart  = trace.AttackStart
	TraceIterStart    = trace.IterStart
	TraceIterEnd      = trace.IterEnd
	TraceDIPFound     = trace.DIPFound
	TraceBitsGated    = trace.BitsGated
	TraceFork         = trace.Fork
	TraceForceProceed = trace.ForceProceed
	TraceInstanceDead = trace.InstanceDead
	TraceKeyAccepted  = trace.KeyAccepted
	TraceAttackEnd    = trace.AttackEnd
	TraceEvalStart    = trace.EvalStart
	TraceKeyScored    = trace.KeyScored
	TraceEvalEnd      = trace.EvalEnd
	TraceInterrupted  = trace.Interrupted
	TraceClauseShared = trace.ClauseShared
	TraceRaceWinner   = trace.RaceWinner
)

// NewJSONLTracer writes one JSON object per event to w (the JSON-lines
// wire format of docs/OBSERVABILITY.md). Writes are serialised; write
// errors are swallowed — tracing never fails an attack.
func NewJSONLTracer(w io.Writer) Tracer { return trace.NewJSONL(w) }

// NewTextTracer writes a compact human-readable line per event to w.
func NewTextTracer(w io.Writer) Tracer { return trace.NewText(w) }

// MultiTracer fans events out to several sinks (nils are skipped; an
// empty result is a nil Tracer, i.e. tracing off).
func MultiTracer(ts ...Tracer) Tracer { return trace.Multi(ts...) }

// TraceRecorder captures events in memory for later inspection.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty, ready-to-use recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
