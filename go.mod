module statsat

go 1.22
